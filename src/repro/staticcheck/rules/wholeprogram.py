"""Whole-program rules (NEON5xx) — transitive, provable properties.

These run over the linked :class:`~repro.staticcheck.graph.ProjectModel`
rather than one file at a time, so the guarantees they enforce are
*transitive*: no laundering a boundary violation through a helper
module, no smuggling a shared RNG stream across an import, no policy
code wandering off the declared observation API, no registry entry that
nothing in the program can ever produce.

* **NEON501** — transitive boundary taint.  Any call-graph path from a
  boundary module (``repro.core``) to device-internal code
  (``repro.gpu`` / ``repro.osmodel``) that does not pass through a
  sanctioned observation layer (``repro.neon`` …) is an error; the full
  call chain is attached to the diagnostic.
* **NEON502** — RNG-stream dataflow.  Raw RNG constructors may not
  escape to module scope, may not appear at all in scheduler/workload
  code (which only ever *receives* streams), and escaped globals may
  not flow into scheduler/workload modules via imports.
* **NEON503** — observation-API isolation.  In observation-client
  modules, every attribute touched on the interception manager
  (receivers named ``neon``) must be in the declarative
  ``observation_api`` allowlist in :mod:`repro.staticcheck.config` —
  the enforcement hook for the ROADMAP's pluggable policy layer.
* **NEON504** — dead registry entries.  Trace event kinds and fault
  injection points that are registered but never emitted/armed anywhere
  in the analyzed program (the inverse of NEON402/404).  Skipped when
  the registry module is outside the analyzed set, so partial scans
  never produce false positives.
* **NEON505** — unused imports.  Module-locally unused bindings; in a
  package ``__init__`` a binding counts as used when ``__all__`` lists
  it or any analyzed module imports it through the package
  (whole-program re-export awareness).
"""

from __future__ import annotations

import ast
from collections import deque
from typing import TYPE_CHECKING, Iterator, Optional

from repro.staticcheck.core import Violation
from repro.staticcheck.dataflow import RngFacts, reaches_internal
from repro.staticcheck.graph import FunctionInfo, ProjectModel
from repro.staticcheck.rules.events import (
    _kind_argument,
    _receiver_name as _trace_receiver,
)
from repro.staticcheck.rules.faults import (
    _point_argument,
    _receiver_name as _faults_receiver,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Longest call chain rendered in a NEON501 diagnostic.
MAX_CHAIN = 12


# ----------------------------------------------------------------------
# NEON501 — transitive boundary taint
# ----------------------------------------------------------------------
def check_boundary_taint(
    model: ProjectModel, config: "Config"
) -> Iterator[Violation]:
    """Call-graph paths from boundary code into device-internal state."""
    reported: set[tuple[str, int, str]] = set()
    for source in model.iter_functions():
        if not config.is_boundary_module(source.module):
            continue
        yield from _taint_paths(model, config, source, reported)


def _node_location(model: ProjectModel, qualname: str) -> tuple[str, int]:
    """(file, definition line) of a resolved call-graph node."""
    if qualname in model.functions:
        function = model.functions[qualname]
        return str(model.modules[function.module].path), function.lineno
    if qualname in model.classes:
        klass = model.classes[qualname]
        return str(model.modules[klass.module].path), klass.lineno
    return "<unknown>", 0


def _taint_paths(
    model: ProjectModel,
    config: "Config",
    source: FunctionInfo,
    reported: set[tuple[str, int, str]],
) -> Iterator[Violation]:
    # BFS; each queue entry is (function, chain-so-far, anchor_line) where
    # the chain carries (qualname, file, definition-line) hops and the
    # anchor is the call site inside the boundary module that starts the
    # offending path — the line the scheduler author owns.
    source_file = str(model.modules[source.module].path)
    queue: deque[
        tuple[FunctionInfo, tuple[tuple[str, str, int], ...], int]
    ] = deque()
    queue.append((source, ((source.qualname, source_file, source.lineno),), 0))
    visited: set[str] = {source.qualname}
    while queue:
        function, path, anchor_line = queue.popleft()
        if len(path) > MAX_CHAIN:
            continue
        for site in function.calls:
            callee = site.callee
            if callee is None:
                continue
            callee_module = model.node_module(callee)
            if callee_module is None:
                continue
            if config.is_sanctioned_module(callee_module):
                continue  # the observation layer touches internals by design
            hop_anchor = anchor_line or site.lineno
            callee_file, callee_def_line = _node_location(model, callee)
            hop_path = path + ((callee, callee_file, callee_def_line),)
            if config.is_internal_import(callee_module):
                yield from _report_taint(
                    config, source, source_file, hop_anchor, hop_path,
                    sink=callee, reported=reported,
                )
                continue
            callee_fn = model.functions.get(callee)
            if callee_fn is None:
                continue
            if not config.is_boundary_module(callee_module):
                # Symbol-reference taint ("the helper touches repro.gpu")
                # only when no resolved call will produce a sharper chain
                # through the same function — one finding per root cause.
                touch = None
                if not _has_direct_internal_call(model, config, callee_fn):
                    touch = reaches_internal(callee_fn, config)
                if touch is not None:
                    symbol, touch_line = touch
                    touch_path = hop_path + (
                        (f"touches {symbol}", callee_file, touch_line),
                    )
                    yield from _report_taint(
                        config, source, source_file, hop_anchor, touch_path,
                        sink=symbol, reported=reported,
                    )
            if callee not in visited:
                visited.add(callee)
                queue.append((callee_fn, hop_path, hop_anchor))


def _has_direct_internal_call(
    model: ProjectModel, config: "Config", function: FunctionInfo
) -> bool:
    for site in function.calls:
        if site.callee is None:
            continue
        module = model.node_module(site.callee)
        if module is not None and config.is_internal_import(module):
            return True
    return False


def _report_taint(
    config: "Config",
    source: FunctionInfo,
    anchor_file: str,
    anchor_line: int,
    path: tuple[tuple[str, str, int], ...],
    sink: str,
    reported: set[tuple[str, int, str]],
) -> Iterator[Violation]:
    key = (anchor_file, anchor_line, sink)
    if key in reported:
        return
    reported.add(key)
    hops = " -> ".join(hop[0] for hop in path)
    yield Violation(
        path=anchor_file,
        line=anchor_line,
        col=0,
        rule_id="NEON501",
        message=(
            f"call chain from boundary module '{source.module}' reaches "
            f"device-internal '{sink}' without passing through the "
            f"observation layer: {hops}"
        ),
        chain=path,
    )


# ----------------------------------------------------------------------
# NEON502 — RNG-stream dataflow
# ----------------------------------------------------------------------
def check_rng_flow(model: ProjectModel, config: "Config") -> Iterator[Violation]:
    facts = RngFacts(model, config)
    for creation in facts.creations:
        if config.is_rng_module(creation.module):
            continue
        path = str(model.modules[creation.module].path)
        if creation.escapes:
            yield Violation(
                path=path,
                line=creation.lineno,
                col=creation.col,
                rule_id="NEON502",
                message=(
                    f"RNG stream '{creation.global_name}' "
                    f"({creation.constructor}) escapes to module scope: a "
                    "shared global generator couples every caller's draws; "
                    "derive per-component streams from "
                    "repro.sim.rng.RngRegistry instead"
                ),
            )
        elif config.is_rng_client_module(creation.module):
            yield Violation(
                path=path,
                line=creation.lineno,
                col=creation.col,
                rule_id="NEON502",
                message=(
                    f"scheduler/workload code constructs its own RNG "
                    f"({creation.constructor}); accept a seeded stream "
                    "parameter fed from repro.sim.rng.RngRegistry (or the "
                    "fault injector's per-point streams) instead"
                ),
            )
    for flow in facts.flows:
        if not config.is_rng_client_module(flow.into_module):
            continue
        receiver = model.modules[flow.into_module]
        creation_path = model.modules[flow.creation.module].path
        yield Violation(
            path=str(receiver.path),
            line=flow.lineno,
            col=0,
            rule_id="NEON502",
            message=(
                f"global RNG stream '{flow.creation.global_name}' (created "
                f"at {creation_path}:{flow.creation.lineno}) flows into "
                f"scheduler/workload module '{flow.into_module}' as "
                f"'{flow.local_name}'; shared streams break per-component "
                "determinism — pass a named RngRegistry stream instead"
            ),
            chain=(
                (
                    f"{flow.creation.module}.{flow.creation.global_name}",
                    str(creation_path),
                    flow.creation.lineno,
                ),
                (
                    f"{flow.into_module} (import)",
                    str(receiver.path),
                    flow.lineno,
                ),
            ),
        )


# ----------------------------------------------------------------------
# NEON503 — observation-API isolation
# ----------------------------------------------------------------------
def check_observation_api(
    model: ProjectModel, config: "Config"
) -> Iterator[Violation]:
    for module_name in sorted(model.modules):
        if not config.is_observation_client_module(module_name):
            continue
        info = model.modules[module_name]
        neon_binding = info.bindings.get("neon")
        neon_is_module = neon_binding is not None and neon_binding.kind == "module"
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name):
                if receiver.id != "neon" or neon_is_module:
                    continue
            elif isinstance(receiver, ast.Attribute):
                if receiver.attr != "neon":
                    continue
            else:
                continue
            if node.attr in config.observation_api:
                continue
            yield Violation(
                path=str(info.path),
                line=node.lineno,
                col=node.col_offset,
                rule_id="NEON503",
                message=(
                    f"'.{node.attr}' is not part of the declared "
                    "interception-observable surface (observation_api in "
                    "repro.staticcheck.config); schedulers and policies may "
                    "only use the allowlisted InterceptionManager API"
                ),
            )


# ----------------------------------------------------------------------
# NEON504 — dead/unregistered registry entries
# ----------------------------------------------------------------------
def check_dead_registry(
    model: ProjectModel, config: "Config"
) -> Iterator[Violation]:
    yield from _dead_entries(
        model,
        registry_module=config.event_registry_module,
        register_call="register_event_kind",
        used=_emitted_kind_names(model),
        noun="trace event kind",
        verb="emitted",
    )
    yield from _dead_entries(
        model,
        registry_module=config.fault_registry_module,
        register_call="register_injection_point",
        used=_armed_point_names(model),
        noun="fault injection point",
        verb="armed",
    )


def _dead_entries(
    model: ProjectModel,
    registry_module: str,
    register_call: str,
    used: set[str],
    noun: str,
    verb: str,
) -> Iterator[Violation]:
    info = model.modules.get(registry_module)
    if info is None:
        return  # partial scan: the registry is outside the analyzed set
    for name in sorted(info.constants):
        definition = info.constants[name]
        call = definition.call or ""
        if not (call == register_call or call.endswith(f".{register_call}")):
            continue
        if name in used:
            continue
        yield Violation(
            path=str(info.path),
            line=definition.lineno,
            col=0,
            rule_id="NEON504",
            message=(
                f"{noun} constant '{name}' is registered but never {verb} "
                f"anywhere in the analyzed program; wire up a site or "
                "remove the registration (dead entries rot the taxonomy)"
            ),
        )


def _identifier_names(expr: Optional[ast.expr]) -> Iterator[str]:
    if expr is None:
        return
    if isinstance(expr, ast.IfExp):
        yield from _identifier_names(expr.body)
        yield from _identifier_names(expr.orelse)
    elif isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, ast.Attribute):
        yield expr.attr


def _emitted_kind_names(model: ProjectModel) -> set[str]:
    # Usage collection is deliberately more generous than NEON401/402's
    # receiver match: ``self._trace.emit`` (a private recorder handle,
    # e.g. the fault injector's) still keeps a kind alive.
    used: set[str] = set()
    for info in model.modules.values():
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver = _trace_receiver(node.func)
            if receiver is not None and receiver.lstrip("_") == "trace":
                used.update(_identifier_names(_kind_argument(node)))
    return used


def _armed_point_names(model: ProjectModel) -> set[str]:
    used: set[str] = set()
    for info in model.modules.values():
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver = _faults_receiver(node.func)
            if receiver is not None and receiver.lstrip("_") == "faults":
                used.update(_identifier_names(_point_argument(node)))
    return used


# ----------------------------------------------------------------------
# NEON505 — unused imports (whole-program re-export aware)
# ----------------------------------------------------------------------
def check_unused_imports(
    model: ProjectModel, config: "Config"
) -> Iterator[Violation]:
    reexport_targets = _reexport_targets(model)
    for module_name in sorted(model.modules):
        info = model.modules[module_name]
        is_package_init = info.path.name == "__init__.py"
        for local in sorted(info.bindings):
            binding = info.bindings[local]
            if local.startswith("_"):
                continue
            if binding.target.split(".", 1)[0] == "__future__":
                continue
            if local in info.used_names:
                continue
            if is_package_init:
                qualified = f"{module_name}.{local}"
                if info.exported is not None and local in info.exported:
                    continue
                if qualified in reexport_targets:
                    continue
                message = (
                    f"'{local}' is imported but neither listed in __all__, "
                    "used in this package, nor imported from it by any "
                    "analyzed module"
                )
            else:
                message = (
                    f"'{local}' (from '{binding.target}') is imported but "
                    "never used in this module"
                )
            yield Violation(
                path=str(info.path),
                line=binding.lineno,
                col=binding.col,
                rule_id="NEON505",
                message=message,
            )


def _reexport_targets(model: ProjectModel) -> set[str]:
    """Every qualified name some analyzed module imports from another."""
    targets: set[str] = set()
    for info in model.modules.values():
        for binding in info.bindings.values():
            targets.add(binding.target)
            # ``from pkg.sub import name``: also marks pkg.sub used.
            head, _, _ = binding.target.rpartition(".")
            if head:
                targets.add(head)
    return targets


#: Rule id -> checker function, in catalog order.  The engine times and
#: runs these over one shared project model.
WHOLE_PROGRAM_CHECKS = {
    "NEON501": check_boundary_taint,
    "NEON502": check_rng_flow,
    "NEON503": check_observation_api,
    "NEON504": check_dead_registry,
    "NEON505": check_unused_imports,
}

__all__ = [
    "WHOLE_PROGRAM_CHECKS",
    "check_boundary_taint",
    "check_dead_registry",
    "check_observation_api",
    "check_rng_flow",
    "check_unused_imports",
]
