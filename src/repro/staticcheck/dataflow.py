"""Dataflow facts over the :class:`~repro.staticcheck.graph.ProjectModel`.

The first client is RNG-stream discipline (NEON502).  The repo's
determinism contract says every random draw comes from a *named, seeded
stream* — :class:`repro.sim.rng.RngRegistry` (simulation) or the fault
injector's per-point streams — so that adding or removing one component
never perturbs another's draws.  Per-file rules already catch unseeded
constructors (NEON203) and ``import random`` (NEON202); what they cannot
see is a *seeded* generator that escapes to module scope and is then
shared across components, or one that flows across modules into
scheduler/workload code.  This module computes the facts those judgments
need:

* every RNG **creation site** in the program (which constructor, where,
  and whether the instance is bound at module scope — an *escape*);
* the set of **escaped global streams** keyed by qualified name;
* every **flow** of an escaped stream into another module via imports.

The analysis is name-based and conservative: it follows single-target
module-level assignments and import bindings, which is exactly the shape
shared-RNG bugs take in practice (``GLOBAL_RNG = default_rng(...)`` in a
helper, ``from helper import GLOBAL_RNG`` in a scheduler).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterator, Optional

from repro.staticcheck.graph import MODULE_NODE, FunctionInfo, ProjectModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config


@dataclasses.dataclass(frozen=True)
class RngCreation:
    """One call to an RNG constructor somewhere in the program."""

    module: str
    #: Qualified function containing the call; ``<module>`` for top level.
    function: str
    lineno: int
    col: int
    constructor: str  # fully expanded ("numpy.random.default_rng")
    #: Module-level name the instance is bound to, when it escapes.
    global_name: Optional[str] = None

    @property
    def escapes(self) -> bool:
        return self.global_name is not None


@dataclasses.dataclass(frozen=True)
class RngFlow:
    """An escaped global stream reaching another module via an import."""

    creation: RngCreation
    into_module: str
    lineno: int  # reference/import line in the receiving module
    local_name: str


class RngFacts:
    """RNG creation sites and cross-module flows for one project model."""

    def __init__(self, model: ProjectModel, config: "Config") -> None:
        self.model = model
        self.config = config
        self.creations: list[RngCreation] = []
        #: qualified global name ("mod.NAME") -> creation site.
        self.globals: dict[str, RngCreation] = {}
        self.flows: list[RngFlow] = []
        self._collect_creations()
        self._collect_flows()

    # ------------------------------------------------------------------
    def _collect_creations(self) -> None:
        constructors = set(self.config.rng_constructors)
        for function in self.model.iter_functions():
            info = self.model.modules[function.module]
            module_level = function.name == MODULE_NODE
            for site in function.calls:
                if site.external not in constructors:
                    continue
                global_name = None
                if module_level:
                    global_name = self._bound_global(info.constants, site.lineno)
                self.creations.append(
                    RngCreation(
                        module=function.module,
                        function=function.qualname,
                        lineno=site.lineno,
                        col=site.col,
                        constructor=site.external,
                        global_name=global_name,
                    )
                )
        for creation in self.creations:
            if creation.global_name is not None:
                qualified = f"{creation.module}.{creation.global_name}"
                self.globals[qualified] = creation

    @staticmethod
    def _bound_global(constants: dict, lineno: int) -> Optional[str]:
        for name, definition in constants.items():
            if definition.lineno == lineno:
                return name
        return None

    # ------------------------------------------------------------------
    def _collect_flows(self) -> None:
        if not self.globals:
            return
        for module_name in sorted(self.model.modules):
            info = self.model.modules[module_name]
            for local, binding in sorted(info.bindings.items()):
                if not binding.runtime:
                    continue
                creation = self.globals.get(binding.target)
                if creation is None or creation.module == module_name:
                    continue
                self.flows.append(
                    RngFlow(
                        creation=creation,
                        into_module=module_name,
                        lineno=binding.lineno,
                        local_name=local,
                    )
                )

    # ------------------------------------------------------------------
    def creations_in(self, module_prefix_test) -> Iterator[RngCreation]:
        """Creation sites whose module satisfies ``module_prefix_test``."""
        for creation in self.creations:
            if module_prefix_test(creation.module):
                yield creation


def reaches_internal(
    function: FunctionInfo, config: "Config"
) -> Optional[tuple[str, int]]:
    """First runtime reference from ``function`` into device-internal state.

    Returns ``(qualified_symbol, lineno)`` or None.  Used by NEON501 to
    treat helper functions that *reference* internal symbols (not just
    call into internal modules) as taint sinks.
    """
    for ref in function.refs:
        if config.is_internal_import(ref.target):
            return ref.target, ref.lineno
    return None


__all__ = ["RngCreation", "RngFacts", "RngFlow", "reaches_internal"]
