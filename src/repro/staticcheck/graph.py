"""The whole-program project model — neonlint's view of the entire package.

Per-file rules (NEON0xx–4xx) judge one module at a time and therefore
cannot see a violation laundered through a helper: a scheduler that calls
``helpers.relay()`` which calls ``repro.gpu.device.queue_depth()`` crosses
the disengagement boundary in two hops, each of which looks innocent on
its own.  The :class:`ProjectModel` built here parses every module once
and links them into

* a **module/import graph** — who imports whom, at runtime vs under
  ``TYPE_CHECKING`` (annotations are free, ground truth is not);
* a **name-resolved call graph** — module-level functions, methods
  (including single-inheritance ``self.method()`` resolution through
  project base classes), aliased imports, ``from x import y`` re-exports
  followed transitively;
* **symbol reference tables** — which runtime-imported external symbols
  each function touches, module-level constant definitions (the registry
  pattern ``NAME = register_event_kind(...)``), and a used-name census
  per module (for unused-import detection).

The model is deliberately conservative: anything it cannot resolve by
name (calls on computed receivers, dynamic dispatch beyond one level of
inheritance) becomes an *unresolved* call site rather than a guess, so
NEON5xx rules built on top report only provable chains.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.staticcheck.core import (
    ModuleContext,
    collect_files,
    module_name_for,
    scope_statements,
)

#: Synthetic function name for a module's top-level statements.
MODULE_NODE = "<module>"


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain → ``"a.b.c"``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@dataclasses.dataclass(frozen=True)
class ImportBinding:
    """One name bound into a module namespace by an import statement."""

    local: str
    #: Fully qualified target: a module (``repro.gpu``) for plain
    #: imports, ``module.symbol`` for ``from module import symbol``.
    target: str
    kind: str  # "module" | "symbol"
    lineno: int
    col: int
    runtime: bool  # False inside ``if TYPE_CHECKING:`` bodies
    #: Statement extent + sibling count, for the unused-import autofix.
    stmt_lineno: int
    stmt_end_lineno: int
    alias_count: int


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    raw: str  # the dotted text as written ("self.drain", "np.random.default_rng")
    #: ``raw`` with its head expanded through the module's import
    #: bindings ("np.random.default_rng" → "numpy.random.default_rng").
    #: Meaningful even when the target is outside the project.
    external: str
    lineno: int
    col: int
    #: Qualified name of the resolved project function/class, or None.
    callee: Optional[str]


@dataclasses.dataclass(frozen=True)
class SymbolRef:
    """A runtime reference from a function body to an imported symbol."""

    target: str  # fully qualified ("repro.gpu.device.GpuDevice" or module)
    lineno: int


@dataclasses.dataclass
class FunctionInfo:
    """One call-graph node: a function, method, or module top level."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]
    lineno: int
    node: ast.AST
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    refs: list[SymbolRef] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ClassInfo:
    name: str
    module: str
    lineno: int
    #: Base-class expressions as written (resolved lazily through bindings).
    bases: tuple[str, ...]
    #: method name -> qualified function name.
    methods: dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


@dataclasses.dataclass(frozen=True)
class ConstantDef:
    """A module-level ``NAME = <call>(...)`` assignment."""

    name: str
    module: str
    lineno: int
    #: Alias-expanded dotted name of the RHS call, or None for plain values.
    call: Optional[str]


class ModuleInfo:
    """Everything the model knows about one parsed module."""

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.name = ctx.module
        self.path = ctx.path
        self.bindings: dict[str, ImportBinding] = {}
        #: Modules whose top level executes when this module is imported.
        self.runtime_imports: set[str] = set()
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.constants: dict[str, ConstantDef] = {}
        self.exported: Optional[set[str]] = None  # __all__, when present
        self.used_names: set[str] = set()

    # -- import bindings ------------------------------------------------
    def add_import(self, node: ast.stmt, runtime: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                self._bind(node, local, target, "module", runtime)
                if runtime:
                    # ``import a.b`` executes a and a.b.
                    parts = alias.name.split(".")
                    for depth in range(1, len(parts) + 1):
                        self.runtime_imports.add(".".join(parts[:depth]))
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                return  # relative imports are not used in this repo
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._bind(
                    node, local, f"{node.module}.{alias.name}", "symbol", runtime
                )
            if runtime:
                self.runtime_imports.add(node.module)

    def _bind(
        self, node: ast.stmt, local: str, target: str, kind: str, runtime: bool
    ) -> None:
        self.bindings[local] = ImportBinding(
            local=local,
            target=target,
            kind=kind,
            lineno=node.lineno,
            col=node.col_offset,
            runtime=runtime,
            stmt_lineno=node.lineno,
            stmt_end_lineno=getattr(node, "end_lineno", node.lineno) or node.lineno,
            alias_count=len(getattr(node, "names", ())),
        )

    # -- name resolution -------------------------------------------------
    def expand(self, dotted: str) -> str:
        """Expand the head of a dotted name through the import bindings.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when the
        module did ``import numpy as np``; unbound heads pass through.
        """
        head, _, rest = dotted.partition(".")
        binding = self.bindings.get(head)
        if binding is None:
            return dotted
        return f"{binding.target}.{rest}" if rest else binding.target


class ProjectModel:
    """The linked whole-program model; see the module docstring."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        #: qualified name -> FunctionInfo for every call-graph node.
        self.functions: dict[str, FunctionInfo] = {}
        #: qualified name -> ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: Files that failed to parse: path -> error text.
        self.unparsed: dict[Path, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        contexts: Iterable[ModuleContext] = (),
        paths: Iterable[Path] = (),
    ) -> "ProjectModel":
        """Build from parsed contexts and/or files (parsed here)."""
        model = cls()
        contexts = list(contexts)
        for path in collect_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
                contexts.append(ModuleContext(path, module_name_for(path), source))
            except (OSError, SyntaxError, ValueError) as exc:
                model.unparsed[path] = str(exc)
        for ctx in contexts:
            model._index_module(ctx)
        for info in model.modules.values():
            model._link_module(info)
        return model

    def _index_module(self, ctx: ModuleContext) -> None:
        info = ModuleInfo(ctx)
        # Last definition wins on duplicate module names (mirrors runtime).
        self.modules[info.name] = info
        self._collect_imports(info, ctx.tree, runtime=True)
        self._collect_defs(info)
        self._collect_used_names(info)
        for function in info.functions.values():
            self.functions[function.qualname] = function
        for klass in info.classes.values():
            self.classes[klass.qualname] = klass

    def _collect_imports(
        self, info: ModuleInfo, node: ast.AST, runtime: bool
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking_test(child.test):
                for stmt in child.body:
                    self._collect_imports(info, stmt, runtime=False)
                    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                        info.add_import(stmt, runtime=False)
                for stmt in child.orelse:
                    self._collect_imports(info, stmt, runtime=runtime)
                    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                        info.add_import(stmt, runtime=runtime)
                continue
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                info.add_import(child, runtime=runtime)
            self._collect_imports(info, child, runtime=runtime)

    def _collect_defs(self, info: ModuleInfo) -> None:
        module_fn = FunctionInfo(
            qualname=f"{info.name}.{MODULE_NODE}",
            module=info.name,
            name=MODULE_NODE,
            cls=None,
            lineno=1,
            node=info.ctx.tree,
        )
        info.functions[module_fn.qualname] = module_fn
        for stmt in info.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{info.name}.{stmt.name}"
                info.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=info.name,
                    name=stmt.name,
                    cls=None,
                    lineno=stmt.lineno,
                    node=stmt,
                )
            elif isinstance(stmt, ast.ClassDef):
                bases = tuple(
                    name
                    for name in (dotted_name(base) for base in stmt.bases)
                    if name is not None
                )
                klass = ClassInfo(
                    name=stmt.name,
                    module=info.name,
                    lineno=stmt.lineno,
                    bases=bases,
                )
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qual = f"{info.name}.{stmt.name}.{item.name}"
                        klass.methods[item.name] = qual
                        info.functions[qual] = FunctionInfo(
                            qualname=qual,
                            module=info.name,
                            name=item.name,
                            cls=stmt.name,
                            lineno=item.lineno,
                            node=item,
                        )
                info.classes[stmt.name] = klass
            elif isinstance(stmt, ast.Assign):
                self._collect_constant(info, stmt)
                self._collect_all(info, stmt)

    def _collect_constant(self, info: ModuleInfo, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        name = stmt.targets[0].id
        call: Optional[str] = None
        if isinstance(stmt.value, ast.Call):
            raw = dotted_name(stmt.value.func)
            if raw is not None:
                call = info.expand(raw)
        info.constants[name] = ConstantDef(
            name=name, module=info.name, lineno=stmt.lineno, call=call
        )

    def _collect_all(self, info: ModuleInfo, stmt: ast.Assign) -> None:
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "__all__"
            and isinstance(stmt.value, (ast.List, ast.Tuple))
        ):
            info.exported = {
                element.value
                for element in stmt.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }

    def _collect_used_names(self, info: ModuleInfo) -> None:
        """Every name the module might reference at runtime or in types.

        Quoted annotations (``x: "Channel"``) are parsed so that
        TYPE_CHECKING imports used only in string annotations still count
        as used.
        """
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Store):
                info.used_names.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                # Conservative: harvest identifier heads from string
                # constants that parse as expressions (covers quoted
                # annotations and typing.cast strings).
                text = node.value.strip()
                if text.isidentifier():
                    info.used_names.add(text)
                elif (
                    0 < len(text) < 200
                    and "." in text
                    and text.replace(".", "").replace("_", "").isalnum()
                ):
                    info.used_names.add(text.split(".", 1)[0])
        if info.exported:
            info.used_names.update(info.exported)

    # ------------------------------------------------------------------
    # Linking — resolve call sites and symbol references
    # ------------------------------------------------------------------
    def _link_module(self, info: ModuleInfo) -> None:
        for function in info.functions.values():
            if function.name == MODULE_NODE:
                body_nodes = list(scope_statements(info.ctx.tree))
            else:
                body_nodes = list(ast.walk(function.node))
            cls = info.classes.get(function.cls) if function.cls else None
            seen_refs: set[tuple[str, int]] = set()
            for node in body_nodes:
                if isinstance(node, ast.Call):
                    site = self._resolve_call(info, node, cls)
                    if site is not None:
                        function.calls.append(site)
                elif isinstance(node, ast.Name) and not isinstance(
                    node.ctx, ast.Store
                ):
                    binding = info.bindings.get(node.id)
                    if binding is not None and binding.runtime:
                        key = (binding.target, node.lineno)
                        if key not in seen_refs:
                            seen_refs.add(key)
                            function.refs.append(
                                SymbolRef(binding.target, node.lineno)
                            )
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    # Function-local runtime imports are references too.
                    if function.name == MODULE_NODE:
                        continue
                    names = (
                        [alias.name for alias in node.names]
                        if isinstance(node, ast.Import)
                        else [node.module or ""]
                    )
                    for name in names:
                        if name:
                            function.refs.append(SymbolRef(name, node.lineno))
            # Module-level: importing a module executes its top level.
            if function.name == MODULE_NODE:
                for target in sorted(info.runtime_imports):
                    if target in self.modules and target != info.name:
                        lineno = 1
                        for binding in info.bindings.values():
                            if binding.runtime and (
                                binding.target == target
                                or binding.target.startswith(target + ".")
                            ):
                                lineno = binding.lineno
                                break
                        function.calls.append(
                            CallSite(
                                raw=f"import {target}",
                                external=target,
                                lineno=lineno,
                                col=0,
                                callee=f"{target}.{MODULE_NODE}",
                            )
                        )

    def _resolve_call(
        self, info: ModuleInfo, node: ast.Call, cls: Optional[ClassInfo]
    ) -> Optional[CallSite]:
        raw = dotted_name(node.func)
        if raw is None:
            return None  # call on a computed expression; not resolvable
        external = info.expand(raw)
        callee = None
        parts = raw.split(".")
        if parts[0] == "self" and cls is not None and len(parts) == 2:
            callee = self._resolve_method(cls, parts[1])
        elif parts[0] in info.bindings:
            callee = self.resolve_symbol(external)
        else:
            callee = self.resolve_symbol(f"{info.name}.{raw}")
        if callee is not None and callee in self.classes:
            # Instantiation: charge the constructor when the project
            # defines one, else keep the class node itself.
            init = self.classes[callee].methods.get("__init__")
            callee = init or callee
        return CallSite(
            raw=raw,
            external=external,
            lineno=node.lineno,
            col=node.col_offset,
            callee=callee,
        )

    def _resolve_method(self, cls: ClassInfo, method: str) -> Optional[str]:
        """Resolve ``self.method()`` through the project's base classes."""
        queue = [cls]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.qualname in visited:
                continue
            visited.add(current.qualname)
            if method in current.methods:
                return current.methods[method]
            owner = self.modules.get(current.module)
            if owner is None:
                continue
            for base in current.bases:
                base_qual = self._resolve_class(owner, base)
                if base_qual is not None and base_qual in self.classes:
                    queue.append(self.classes[base_qual])
        return None

    def _resolve_class(self, info: ModuleInfo, base: str) -> Optional[str]:
        head = base.split(".", 1)[0]
        if head in info.bindings:
            resolved = self.resolve_symbol(info.expand(base))
        else:
            resolved = self.resolve_symbol(f"{info.name}.{base}")
        if resolved is not None and resolved in self.classes:
            return resolved
        return None

    def resolve_symbol(self, candidate: str) -> Optional[str]:
        """Qualified function/class for a fully expanded dotted name.

        Follows ``from x import y`` re-export chains (``repro.core.
        SchedulerBase`` → ``repro.core.base.SchedulerBase``) with a
        visited guard so import cycles terminate.
        """
        return self._resolve(candidate, set())

    def _resolve(self, candidate: str, visited: set[str]) -> Optional[str]:
        if candidate in visited:
            return None
        visited.add(candidate)
        if candidate in self.functions or candidate in self.classes:
            return candidate
        parts = candidate.split(".")
        for split in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:split])
            if prefix not in self.modules:
                continue
            info = self.modules[prefix]
            remainder = parts[split:]
            direct = f"{prefix}.{'.'.join(remainder)}"
            if direct in self.functions or direct in self.classes:
                return direct
            head = remainder[0]
            # Class attribute: Cls.method
            if head in info.classes and len(remainder) == 2:
                method = self._resolve_method(info.classes[head], remainder[1])
                if method is not None:
                    return method
            binding = info.bindings.get(head)
            if binding is not None:
                rest = remainder[1:]
                target = ".".join([binding.target, *rest]) if rest else binding.target
                return self._resolve(target, visited)
            return None
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_module(self, qualname: str) -> Optional[str]:
        if qualname in self.functions:
            return self.functions[qualname].module
        if qualname in self.classes:
            return self.classes[qualname].module
        return None

    def import_graph(self) -> dict[str, set[str]]:
        """module -> set of runtime-imported modules (project-internal)."""
        return {
            name: {
                target for target in info.runtime_imports if target in self.modules
            }
            for name, info in self.modules.items()
        }

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for module in sorted(self.modules):
            info = self.modules[module]
            for qual in sorted(info.functions):
                yield info.functions[qual]


__all__ = [
    "MODULE_NODE",
    "CallSite",
    "ClassInfo",
    "ConstantDef",
    "FunctionInfo",
    "ImportBinding",
    "ModuleInfo",
    "ProjectModel",
    "SymbolRef",
    "dotted_name",
]
