"""neonlint core — module contexts, pragma parsing, and the analysis driver.

Checkers are pure functions of a parsed module: they receive a
:class:`ModuleContext` (path, dotted module name, AST, raw source lines)
and yield :class:`Violation` records.  Suppression — inline pragmas and
config-file allow entries — is applied centrally here so every rule gets
it for free.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Inline per-line allowlist pragma: ``# neonlint: allow[NEON102] reason``.
PRAGMA_RE = re.compile(r"neonlint:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: Rule id reported for files that do not parse.
PARSE_ERROR_RULE = "NEON000"


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One rule violation, anchored to a source location.

    Whole-program rules (NEON5xx) may attach a ``chain`` — the resolved
    call path that proves the finding — rendered as indented follow-up
    lines in text output and as related locations in SARIF.  Each hop is
    ``(qualified_name, path, line)``.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    chain: tuple[tuple[str, str, int], ...] = ()

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if not self.chain:
            return head
        hops = [
            f"    {index}. {qual}  ({path}:{line})"
            for index, (qual, path, line) in enumerate(self.chain, start=1)
        ]
        return "\n".join([head, "    call chain:"] + hops)


class ModuleContext:
    """A parsed module plus everything checkers need to judge it."""

    def __init__(self, path: Path, module: str, source: str) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: line number -> set of rule ids granted an audited exception.
        self.pragmas: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(text)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")}
                self.pragmas.setdefault(lineno, set()).update(rules)

    def pragma_allows(self, line: int, rule_id: str) -> bool:
        return rule_id in self.pragmas.get(line, ())


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` package chain.

    ``src/repro/core/base.py`` → ``repro.core.base``; a loose file outside
    any package is just its stem.
    """
    path = path.resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or path.stem


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def scope_statements(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function/class scopes.

    The root's own body is walked even when the root is itself a function
    or class definition.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(child))


def analyze_file(path: Path, config: "Config") -> list[Violation]:
    """Run every checker over one file, applying suppression."""
    from repro.staticcheck.rules import build_checkers

    try:
        source = path.read_text(encoding="utf-8")
        ctx = ModuleContext(path, module_name_for(path), source)
    except (OSError, SyntaxError, ValueError) as exc:
        return [
            Violation(
                path=str(path),
                line=getattr(exc, "lineno", 0) or 0,
                col=getattr(exc, "offset", 0) or 0,
                rule_id=PARSE_ERROR_RULE,
                message=f"file could not be analyzed: {exc}",
            )
        ]
    violations = []
    for checker in build_checkers(config):
        for violation in checker.check(ctx, config):
            if ctx.pragma_allows(violation.line, violation.rule_id):
                continue
            if config.allowlisted(path, violation.line, violation.rule_id):
                continue
            violations.append(violation)
    return violations


def analyze_paths(paths: Iterable[Path], config: "Config") -> list[Violation]:
    """Analyze every Python file under ``paths``; sorted violations."""
    violations: list[Violation] = []
    for path in collect_files(paths):
        violations.extend(analyze_file(path, config))
    return sorted(violations)
