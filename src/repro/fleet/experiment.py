"""Fleet experiment cells, tables, and chaos invariants.

:class:`FleetCellSpec` is the fleet analogue of
:class:`~repro.experiments.cells.CellSpec`: a picklable, content-keyed
description of one complete fleet run, so fleet scenarios fan out over
the experiment farm (``run_cells``) and share its result cache.  The
content key namespaces itself with a ``"fleet"`` marker plus the device
count, placement, and global policy, so fleet cells never collide with
single-device cells.

The module also owns the fleet chaos story: device-loss fault plans and
the invariant checker the chaos matrix (and CI smoke job) assert —
tenants of a lost device migrate to a survivor or escalate, bystander
tenants are never killed and never starve, and the fleet-level Jain
index stays above its floor.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.cells import (
    WorkloadSpec,
    _jsonable,
    register_workload_kind,
)
from repro.experiments.runner import WorkloadResult
from repro.faults import registry as points
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.gpu.params import GpuParams
from repro.metrics.fairness import jain_index
from repro.metrics.tables import format_table
from repro.obs.monitor import active_monitor
from repro.osmodel.costs import CostParams

register_workload_kind("tenant", FleetTenant)


def tenant_specs(
    count: int,
    request_size_us: float = 800.0,
    sleep_ratio: float = 0.0,
    jitter_sigma: float = 0.0,
    partitions: int = 1,
) -> tuple[WorkloadSpec, ...]:
    """Uniform fleet tenants ``p<k>.t<i>``, round-robined over partitions."""
    if count < 1:
        raise ValueError("need at least one tenant")
    if partitions < 1:
        raise ValueError("need at least one partition")
    specs = []
    for index in range(count):
        group = f"p{index % partitions}"
        specs.append(
            WorkloadSpec.of(
                "tenant",
                f"{group}.t{index:03d}",
                request_size_us=request_size_us,
                sleep_ratio=sleep_ratio,
                jitter_sigma=jitter_sigma,
            )
        )
    return tuple(specs)


@dataclass(frozen=True)
class FleetCellSpec:
    """One fleet run, declaratively — farm- and cache-compatible."""

    devices: int
    scheduler: str
    workloads: tuple[WorkloadSpec, ...]
    duration_us: float
    warmup_us: float
    seed: int = 0
    placement: str = "least-loaded"
    policy: str = "fleet-fair"
    costs: Optional[CostParams] = None
    gpu_params: Optional[GpuParams] = None
    fault_plan: Optional[FaultPlan] = None
    #: Planned migrations: ``(at_us, tenant, dst_device)`` requests, each
    #: committing at the source's next engagement boundary.
    moves: tuple = ()

    @property
    def cacheable(self) -> bool:
        return all(workload.cacheable for workload in self.workloads)

    def content_key(self) -> str:
        """Stable content hash; namespaced apart from CellSpec keys."""
        if not self.cacheable:
            raise ValueError("cells with callable workload specs have no key")
        payload = {
            "fleet": True,
            "devices": self.devices,
            "scheduler": self.scheduler,
            "placement": self.placement,
            "policy": self.policy,
            "workloads": [
                {"kind": w.kind, "args": _jsonable(w.args),
                 "kwargs": _jsonable(dict(w.kwargs))}
                for w in self.workloads
            ],
            "duration_us": self.duration_us,
            "warmup_us": self.warmup_us,
            "seed": self.seed,
            "costs": _jsonable(self.costs),
            "gpu_params": _jsonable(self.gpu_params),
        }
        if self.fault_plan is not None:
            payload["fault_plan"] = _jsonable(self.fault_plan)
        if self.moves:
            payload["moves"] = _jsonable(self.moves)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def label(self) -> str:
        tag = (
            f"fleet{self.devices}:{self.scheduler}:"
            f"{len(self.workloads)}ten:{self.placement}:{self.policy}"
            f":s{self.seed}"
        )
        if self.fault_plan is not None:
            tag += f"+{self.fault_plan.name}"
        return tag

    def run(self) -> dict[str, WorkloadResult]:
        """Execute this fleet cell and return its per-tenant results."""
        session = active_monitor()
        if session is None:
            env = build_fleet_env(
                devices=self.devices,
                scheduler=self.scheduler,
                seed=self.seed,
                costs=self.costs,
                gpu_params=self.gpu_params,
                fault_plan=self.fault_plan,
                placement=self.placement,
                policy=self.policy,
            )
            tenants = [workload.build() for workload in self.workloads]
            return run_fleet(
                env, tenants, self.duration_us, self.warmup_us,
                moves=self.moves,
            )
        # Monitored run: share the monitor's live-sink trace recorder and
        # metrics registry (cf. repro.experiments.runner.measure).
        monitor = session.begin_run()
        env = build_fleet_env(
            devices=self.devices,
            scheduler=self.scheduler,
            seed=self.seed,
            costs=self.costs,
            gpu_params=self.gpu_params,
            fault_plan=self.fault_plan,
            placement=self.placement,
            policy=self.policy,
            trace=monitor.trace,
            metrics=monitor.metrics,
        )
        tenants = [workload.build() for workload in self.workloads]
        try:
            return run_fleet(
                env, tenants, self.duration_us, self.warmup_us,
                moves=self.moves,
            )
        finally:
            session.end_run(monitor)


# ----------------------------------------------------------------------
# Summaries and tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetSummary:
    """Fleet-level rollup of one run's per-tenant results."""

    devices: int
    tenants: int
    jain: float
    moves: int
    loss_moves: int
    devices_lost: int
    killed: int


def summarize_fleet(results: Dict[str, WorkloadResult]) -> FleetSummary:
    """Fleet rollup from results alone (survives the farm's cache)."""
    values = list(results.values())

    def peak(metric: str, default: float) -> float:
        return max(
            (r.metrics.get(metric, default) for r in values), default=default
        )

    return FleetSummary(
        devices=int(peak("fleet_devices", 1.0)),
        tenants=len(values),
        jain=jain_index(r.ground_truth_usage_us for r in values),
        moves=int(sum(r.metrics.get("fleet_moves", 0.0) for r in values)),
        loss_moves=int(
            sum(r.metrics.get("fleet_loss_moves", 0.0) for r in values)
        ),
        devices_lost=int(peak("fleet_devices_lost", 0.0)),
        killed=sum(1 for r in values if r.killed),
    )


def format_fleet_table(results: Dict[str, WorkloadResult]) -> str:
    """Per-device rollup table plus the fleet-level summary lines."""
    summary = summarize_fleet(results)
    by_device: Dict[int, List[WorkloadResult]] = {}
    for name in sorted(results):
        result = results[name]
        device = int(result.metrics.get("fleet_device", 0.0))
        by_device.setdefault(device, []).append(result)
    rows = []
    for device in sorted(by_device):
        members = by_device[device]
        usage_ms = sum(r.ground_truth_usage_us for r in members) / 1000.0
        rounds = [r.mean_round_us for r in members if r.rounds.count]
        mean_round = sum(rounds) / len(rounds) if rounds else float("nan")
        moves = int(sum(r.metrics.get("fleet_moves", 0.0) for r in members))
        killed = sum(1 for r in members if r.killed)
        rows.append(
            (device, len(members), usage_ms, mean_round, moves, killed)
        )
    lines = [
        format_table(
            ("device", "tenants", "usage_ms", "mean_round_us", "moves",
             "killed"),
            rows,
        ),
        "",
        f"fleet Jain index: {summary.jain:.3f}",
        f"migrations: {summary.moves} "
        f"(rebalance {summary.moves - summary.loss_moves}, "
        f"device_loss {summary.loss_moves})",
        f"devices lost: {summary.devices_lost}   "
        f"tenants killed: {summary.killed}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chaos: device loss plans and fleet invariants
# ----------------------------------------------------------------------
def device_loss_plan(
    device: int, at_us: float, name: Optional[str] = None
) -> FaultPlan:
    """A plan dropping one device at (the poll tick after) ``at_us``."""
    return FaultPlan(
        name=name or f"lose-d{device}",
        specs=(
            FaultSpec(
                points.FLEET_DEVICE_LOSS,
                start_us=at_us,
                count=1,
                target_task=f"device{device}",
            ),
        ),
    )


def check_fleet_invariants(
    results: Dict[str, WorkloadResult],
    jain_floor: Optional[float] = None,
) -> list[str]:
    """Fleet protection invariants over one run's results.

    * With at least one surviving device, no tenant may end the run
      killed by device loss — its task must have migrated (reincarnated)
      instead; escalation is legal only when the whole fleet is gone.
    * Bystander tenants (never touched by a loss) are never killed and
      never starve (they complete rounds past warmup).
    * Optionally, fleet-wide Jain over ground-truth usage stays at or
      above ``jain_floor``.
    """
    violations: list[str] = []
    summary = summarize_fleet(results)
    survivors = summary.devices - summary.devices_lost
    for name in sorted(results):
        result = results[name]
        loss_moves = result.metrics.get("fleet_loss_moves", 0.0)
        lost_kill = result.kill_reason == "device lost"
        if lost_kill and survivors > 0:
            violations.append(
                f"{name}: escalated by device loss despite "
                f"{survivors} surviving device(s)"
            )
        if loss_moves == 0 and not lost_kill:
            # A bystander: its device never went down.
            if result.killed:
                violations.append(
                    f"{name}: bystander killed: {result.kill_reason}"
                )
            elif result.rounds.count == 0:
                violations.append(
                    f"{name}: bystander starved (zero rounds past warmup)"
                )
    if jain_floor is not None:
        if not summary.jain >= jain_floor:  # NaN-proof comparison
            violations.append(
                f"fleet Jain {summary.jain:.3f} below floor {jain_floor:g}"
            )
    return violations
