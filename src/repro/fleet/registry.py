"""The fleet device registry: N device stacks inside one simulator.

``build_fleet_env`` instantiates *independent* GPU/kernel/scheduler
stacks — each with its own interception state, polling, and local DFQ —
sharing one :class:`~repro.sim.engine.Simulator`, one RNG registry, one
metrics registry, and one trace recorder.  Device identity rides on the
trace stream: each stack writes through a
:class:`~repro.sim.trace.DeviceTraceView` that tags every record with its
``device`` id, which is what lets the global fair-share layer (and the
windowed observability stack) attribute events without touching ground
truth.

A fleet of one is special-cased to be *byte-identical* to the
single-device path: the lone stack writes the base recorder directly (no
``device`` tags), no global-share sink is attached to a disabled
recorder, and construction order mirrors
:func:`repro.experiments.runner.build_env` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.base import SchedulerBase, scheduler_registry
from repro.experiments.runner import (
    DEFAULT_DURATION_US,
    DEFAULT_WARMUP_US,
    WorkloadResult,
)
from repro.faults.injector import Injector
from repro.faults.plan import FaultPlan
from repro.faults.registry import FLEET_DEVICE_LOSS
from repro.fleet.migration import MigrationManager, MigrationRecord
from repro.fleet.placement import PlacementPolicy, placement_registry
from repro.fleet.policies import GlobalPolicy, global_policy_registry
from repro.fleet.share import GlobalFairShare
from repro.gpu.device import GpuDevice
from repro.gpu.params import GpuParams
from repro.obs import events
from repro.obs.metrics import MetricsRegistry
from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import ChannelQuotaPolicy, Kernel, MemoryQuotaPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import DeviceTraceView, NullRecorder, TraceRecorder
from repro.workloads.base import Workload

SchedulerSpec = Union[str, Callable[[], SchedulerBase]]
PlacementSpec = Union[str, PlacementPolicy]
PolicySpec = Union[str, GlobalPolicy, None]


@dataclass
class DeviceStack:
    """One device's full stack: GPU model, kernel, local scheduler."""

    device_id: int
    device: GpuDevice
    kernel: Kernel
    scheduler: SchedulerBase
    #: The stack's trace handle — the base recorder for a fleet of one,
    #: a :class:`DeviceTraceView` tagging ``device`` otherwise.
    trace: TraceRecorder
    lost: bool = False


class FleetEnv:
    """A wired fleet: stacks, placement, migration, global shares."""

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        trace: TraceRecorder,
        metrics: MetricsRegistry,
        faults: Optional[Injector],
        stacks: List[DeviceStack],
        placement: PlacementPolicy,
        share: Optional[GlobalFairShare],
        costs: CostParams,
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.trace = trace
        self.metrics = metrics
        self.faults = faults
        self.stacks = stacks
        self.placement = placement
        self.share = share
        self.costs = costs
        self.migrations = MigrationManager(self)
        #: Tenants in placement order.
        self.tenants: List[Workload] = []
        #: Tenant name -> current device id.
        self.tenant_device: Dict[str, int] = {}
        #: Tenant name -> every (device, task) incarnation, in order;
        #: ground-truth usage sums over these at the end of a run.
        self.tenant_tasks: Dict[str, List[Tuple[int, object]]] = {}
        #: Devices lost to fault injection, in loss order.
        self.lost_devices: List[int] = []

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def device_of(self, tenant: Workload) -> int:
        return self.tenant_device[tenant.name]

    def live_stacks(self) -> List[DeviceStack]:
        return [stack for stack in self.stacks if not stack.lost]

    def place(
        self, tenant: Workload, device_id: Optional[int] = None
    ) -> int:
        """Assign a device (via the placement policy) and start the tenant."""
        if tenant.name in self.tenant_device:
            raise ValueError(f"tenant {tenant.name!r} already placed")
        if device_id is None:
            lost = [stack.device_id for stack in self.stacks if stack.lost]
            device_id = self.placement.assign(tenant.name, exclude=lost)
        stack = self.stacks[device_id]
        if stack.lost:
            raise ValueError(f"device {device_id} was lost")
        self.tenants.append(tenant)
        self.tenant_device[tenant.name] = device_id
        self.placement.placed(device_id)
        tenant.fleet = self
        # A fleet of one never emits fleet events: its trace must stay
        # record-for-record identical to the plain runner's.
        if stack.trace.enabled and len(self.stacks) > 1:
            stack.trace.emit(
                self.sim.now, "fleet", events.FLEET_PLACE,
                task=tenant.name, policy=self.placement.name,
            )
        tenant.start(self.sim, stack.kernel, self.rng)
        self.tenant_tasks.setdefault(tenant.name, []).append(
            (device_id, tenant.task)
        )
        return device_id

    def note_move(self, tenant: Workload, src: int, dst: int, task) -> None:
        """Bookkeeping for a committed planned migration."""
        self.tenant_device[tenant.name] = dst
        self.placement.departed(src)
        self.placement.placed(dst)
        self.tenant_tasks.setdefault(tenant.name, []).append((dst, task))

    # ------------------------------------------------------------------
    # Device loss and recovery
    # ------------------------------------------------------------------
    def lose_device(self, device_id: int) -> None:
        """Drop a device: tear its tenants down, migrate or escalate."""
        stack = self.stacks[device_id]
        if stack.lost:
            return
        stack.lost = True
        self.lost_devices.append(device_id)
        survivors = self.live_stacks()
        victims = [
            tenant
            for tenant in self.tenants
            if self.tenant_device.get(tenant.name) == device_id
            and tenant.task is not None
            and tenant.task.alive
        ]
        if stack.trace.enabled:
            stack.trace.emit(
                self.sim.now, "fleet", events.FLEET_DEVICE_LOST,
                tenants=[tenant.name for tenant in victims],
            )
        self.metrics.inc("fleet_device_losses")
        lost_ids = [s.device_id for s in self.stacks if s.lost]
        for tenant in victims:
            if survivors and hasattr(tenant, "_reincarnation"):
                # Migration-based recovery: pick a survivor now; the
                # tenant rebinds there when the kill reaches it.
                dst = self.placement.assign(tenant.name, exclude=lost_ids)
                tenant._reincarnation = self.stacks[dst]
            else:
                # No survivor (or a non-fleet workload): the kill stands.
                self.placement.departed(device_id)
            stack.kernel.kill_task(tenant.task, "device lost")

    def reincarnate(self, tenant, dst_stack: DeviceStack) -> None:
        """Restart a tenant of a lost device on the chosen survivor.

        Called from the tenant's own kill handler; spawns a fresh process
        (charged the migration cost up front) bound to a fresh task on
        the destination kernel.
        """
        src = self.tenant_device[tenant.name]
        dst = dst_stack.device_id
        cost = self.costs.migration_cost_us
        if dst_stack.trace.enabled:
            dst_stack.trace.emit(
                self.sim.now, "fleet", events.FLEET_MIGRATE_BEGIN,
                task=tenant.name, src=src, dst=dst, reason="device_loss",
            )
        task = dst_stack.kernel.create_task(tenant.name)
        task.workload = tenant
        tenant.kernel = dst_stack.kernel
        tenant.task = task
        tenant._pipelines.clear()
        task.process = self.sim.spawn(
            self._restart(tenant, cost), name=f"task.{tenant.name}"
        )
        self.tenant_device[tenant.name] = dst
        self.placement.departed(src)
        self.placement.placed(dst)
        self.tenant_tasks.setdefault(tenant.name, []).append((dst, task))
        record = MigrationRecord(
            self.sim.now, tenant.name, src, dst, "device_loss", cost
        )
        self.migrations.records.append(record)
        tenant.migrations.append(record)
        self.metrics.inc("fleet_migrations", tenant.name)
        if dst_stack.trace.enabled:
            dst_stack.trace.emit(
                self.sim.now, "fleet", events.FLEET_MIGRATE_END,
                task=tenant.name, src=src, dst=dst, reason="device_loss",
                cost_us=cost,
            )

    def _restart(self, tenant, cost: float):
        if cost > 0:
            yield cost
        yield from tenant._run()

    # ------------------------------------------------------------------
    # Fault-injection wiring (fleet.device_loss)
    # ------------------------------------------------------------------
    def spawn_loss_controller(self) -> bool:
        """Poll the injector for armed device-loss specs, if any exist.

        Only spawned when the fault plan actually touches
        ``fleet.device_loss`` — otherwise the fleet runs with zero extra
        simulator events, like every other absent-injector path.
        """
        if self.faults is None:
            return False
        if FLEET_DEVICE_LOSS not in self.faults.plan.points():
            return False
        self.sim.spawn(self._loss_controller(), name="fleet.loss-controller")
        return True

    def _loss_controller(self):
        period = self.costs.poll_interval_us
        while True:
            yield period
            for stack in self.stacks:
                if stack.lost:
                    continue
                spec = self.faults.arm(
                    FLEET_DEVICE_LOSS, f"device{stack.device_id}"
                )
                if spec is not None:
                    self.lose_device(stack.device_id)
            if all(stack.lost for stack in self.stacks):
                return


def _make_scheduler(spec: SchedulerSpec) -> SchedulerBase:
    if isinstance(spec, str):
        try:
            return scheduler_registry[spec]()
        except KeyError:
            known = ", ".join(sorted(scheduler_registry))
            raise KeyError(
                f"unknown scheduler {spec!r}; known: {known}"
            ) from None
    return spec()


def build_fleet_env(
    devices: int = 1,
    scheduler: SchedulerSpec = "dfq",
    seed: int = 0,
    costs: Optional[CostParams] = None,
    gpu_params: Optional[GpuParams] = None,
    quota: Optional[ChannelQuotaPolicy] = None,
    memory_quota: Optional[MemoryQuotaPolicy] = None,
    trace: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
    placement: PlacementSpec = "least-loaded",
    policy: PolicySpec = "fleet-fair",
) -> FleetEnv:
    """Wire up ``devices`` independent stacks in one simulator.

    Defaults follow :func:`repro.experiments.runner.build_env`: no trace
    means a :class:`NullRecorder` for a fleet of one (byte-identity with
    the plain path) and a non-retaining streaming recorder otherwise
    (the global share layer consumes the stream live; nothing is
    buffered).  ``policy=None`` disables global re-weighting entirely.
    """
    if devices < 1:
        raise ValueError("a fleet needs at least one device")
    sim = Simulator()
    rng = RngRegistry(seed)
    if trace is None:
        if devices == 1:
            trace = NullRecorder()
        else:
            trace = TraceRecorder(retain=False)
    if metrics is None:
        metrics = MetricsRegistry()
    faults = (
        Injector(fault_plan, sim, trace=trace, metrics=metrics)
        if fault_plan is not None
        else None
    )
    if costs is None:
        costs = CostParams()
    stacks: List[DeviceStack] = []
    for device_id in range(devices):
        view = trace if devices == 1 else DeviceTraceView(trace, device_id)
        device = GpuDevice(sim, gpu_params, view, metrics, faults=faults)
        kernel = Kernel(
            sim, device, costs, view, quota, memory_quota, metrics,
            faults=faults,
        )
        local = _make_scheduler(scheduler)
        kernel.attach_scheduler(local)
        stacks.append(DeviceStack(device_id, device, kernel, local, view))
    if isinstance(placement, str):
        try:
            placement = placement_registry[placement]()
        except KeyError:
            known = ", ".join(sorted(placement_registry))
            raise KeyError(
                f"unknown placement {placement!r}; known: {known}"
            ) from None
    placement.bind(range(devices))
    if isinstance(policy, str):
        try:
            policy = global_policy_registry[policy]()
        except KeyError:
            known = ", ".join(sorted(global_policy_registry))
            raise KeyError(
                f"unknown global policy {policy!r}; known: {known}"
            ) from None
    share = None
    if policy is not None and trace.enabled:
        share = GlobalFairShare(policy, trace)
        trace.add_sink(share)
        for stack in stacks:
            share.watch(stack.device_id, stack.scheduler)
    env = FleetEnv(
        sim, rng, trace, metrics, faults, stacks, placement, share, costs
    )
    env.spawn_loss_controller()
    return env


def _move_controller(env: FleetEnv, moves: Sequence[Tuple[float, str, int]]):
    """Request planned migrations at their scheduled virtual times."""
    last = 0.0
    for at_us, tenant_name, dst in sorted(moves):
        delay = at_us - last
        if delay > 0:
            yield delay
        last = max(last, at_us)
        tenant = next(
            (t for t in env.tenants if t.name == tenant_name), None
        )
        if tenant is None or env.tenant_device.get(tenant_name) == dst:
            continue
        try:
            env.migrations.request(tenant, dst)
        except ValueError:
            # Target lost, tenant dead, or a move already pending; the
            # scheduled move simply lapses.
            pass


def run_fleet(
    env: FleetEnv,
    tenants: Sequence[Workload],
    duration_us: float = DEFAULT_DURATION_US,
    warmup_us: float = DEFAULT_WARMUP_US,
    moves: Sequence[Tuple[float, str, int]] = (),
) -> dict[str, WorkloadResult]:
    """Place and start the tenants, run the clock, summarize.

    Mirrors :func:`repro.experiments.runner.run_workloads` — a fleet of
    one returns field-identical results — and for larger fleets adds
    ``fleet_*`` keys to each tenant's metrics snapshot (current/initial
    device, migration count, fleet size, devices lost) so farm-cached
    results carry enough to render fleet tables.  ``moves`` schedules
    planned migrations as ``(at_us, tenant, dst_device)`` requests; each
    commits at its source's next engagement boundary.
    """
    for tenant in tenants:
        env.place(tenant)
    if moves:
        env.sim.spawn(
            _move_controller(env, moves), name="fleet.move-controller"
        )
    env.sim.run(until=duration_us)
    monitor = getattr(env.trace, "monitor", None)
    if monitor is not None:
        monitor.finalize(env.sim.now)
    dropped = getattr(env.trace, "dropped", 0)
    if dropped:
        from repro.obs.store import active_collector

        collector = active_collector()
        if collector is not None:
            collector.note_trace_dropped(dropped)
    engagement = {
        stack.device_id: stack.scheduler.neon.engagement.snapshot(env.sim.now)
        for stack in env.stacks
    }
    fleet_size = len(env.stacks)
    results: dict[str, WorkloadResult] = {}
    for tenant in tenants:
        final_device = env.tenant_device[tenant.name]
        task_metrics = env.metrics.task_view(tenant.task.name)
        task_metrics.update(
            engagement[final_device].get(tenant.task.name, {})
        )
        history = env.tenant_tasks.get(tenant.name, [])
        usage = sum(
            env.stacks[device_id].device.task_usage(task)
            for device_id, task in history
        )
        # A fleet of one adds these only when a loss actually happened,
        # keeping fault-free single-device results field-identical to
        # the plain runner.
        if fleet_size > 1 or env.lost_devices:
            task_metrics["fleet_device"] = float(final_device)
            task_metrics["fleet_device_initial"] = float(
                history[0][0] if history else final_device
            )
            moves = getattr(tenant, "migrations", ())
            task_metrics["fleet_moves"] = float(len(moves))
            task_metrics["fleet_loss_moves"] = float(
                sum(1 for move in moves if move.reason == "device_loss")
            )
            task_metrics["fleet_devices"] = float(fleet_size)
            task_metrics["fleet_devices_lost"] = float(len(env.lost_devices))
        results[tenant.name] = WorkloadResult(
            name=tenant.name,
            rounds=tenant.round_stats(warmup_us, duration_us),
            killed=tenant.killed,
            kill_reason=tenant.task.kill_reason,
            mean_request_us=tenant.mean_request_size(),
            requests_submitted=len(tenant.requests),
            ground_truth_usage_us=usage,
            metrics=task_metrics,
        )
    return results
