"""Global fair-share policies: pure math over per-device digests.

This module is deliberately *boundary-constrained*: neonlint applies the
disengagement-boundary rules (NEON101/102) and the observation-isolation
rule (NEON503) to it, exactly as to ``repro.core``.  A global policy may
therefore consume only the interception-observable digests defined here
— accumulated from ``share_sample`` / ``overuse_charge`` /
``request_complete`` trace events by :class:`repro.fleet.share.
GlobalFairShare` — and may never import the GPU or kernel models or
dereference ground-truth device state.  That is the fleet-level analogue
of the paper's Section 3 contract: the arbiter sees what interception
can see, nothing more.

A policy maps one device's digest (plus the fleet-wide view) to a
``tenant name -> DFQ share weight`` dict, applied by the coordinator at
that device's next engagement tick.  Weights are normalized to mean 1.0
per device so a balanced fleet — and any fleet of size 1 — reproduces
the default uniform-weight DFQ behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Type


@dataclass
class TenantDigest:
    """Interception-observable totals for one tenant on one device."""

    tenant: str
    #: Integrated device time from ``share_sample`` events (µs).
    usage_us: float = 0.0
    #: Excess charged past engagement boundaries (``overuse_charge``).
    overuse_us: float = 0.0
    #: Retired requests (``request_complete``).
    completions: int = 0
    #: Total service time of retired requests (µs).
    service_us: float = 0.0

    @property
    def observed_us(self) -> float:
        """Best usage estimate: integrated shares, else retired service."""
        return self.usage_us if self.usage_us > 0 else self.service_us


@dataclass
class DeviceDigest:
    """One device's tenant digests, as the global layer sees them."""

    device_id: int
    tenants: Dict[str, TenantDigest] = field(default_factory=dict)
    #: Engagement ticks observed (``freerun_start`` / ``token_pass``).
    ticks: int = 0

    def tenant(self, name: str) -> TenantDigest:
        digest = self.tenants.get(name)
        if digest is None:
            digest = self.tenants[name] = TenantDigest(name)
        return digest


def normalized(weights: Dict[str, float]) -> Dict[str, float]:
    """Scale weights to mean exactly 1.0 (the DFQ default).

    Uniform inputs come out as exactly 1.0 per tenant — not merely close
    — because DFQ lag thresholds are absolute µs, so any uniform weight
    other than 1.0 would change denial behaviour.
    """
    if not weights:
        return {}
    total = sum(weights.values())
    count = len(weights)
    if total <= 0:
        return {name: 1.0 for name in weights}
    values = set(weights.values())
    if len(values) == 1:
        return {name: 1.0 for name in weights}
    scale = count / total
    return {name: value * scale for name, value in weights.items()}


class GlobalPolicy:
    """Base class: per-device weight assignment from fleet digests."""

    #: Registry key and display name.
    name = "base"

    def weights(
        self, local: DeviceDigest, fleet: Sequence[DeviceDigest]
    ) -> Dict[str, float]:
        """Return ``tenant -> weight`` for ``local``'s scheduler.

        Called at ``local``'s engagement ticks with the current digests
        of every fleet device.  Must be deterministic.
        """
        raise NotImplementedError


#: Name → class map used by the fleet runner and the CLI.
global_policy_registry: Dict[str, Type[GlobalPolicy]] = {}


def register_global_policy(cls: Type[GlobalPolicy]) -> Type[GlobalPolicy]:
    """Class decorator adding a policy to the registry."""
    global_policy_registry[cls.name] = cls
    return cls


@register_global_policy
class FleetFairShare(GlobalPolicy):
    """Entitlement-proportional fair share (the default).

    Each tenant holds an entitlement (default 1.0); local weights are the
    entitlements normalized to mean 1.0 per device.  With uniform
    entitlements every weight is exactly 1.0, so single-device runs and
    balanced fleets behave byte-identically to plain DFQ.
    """

    name = "fleet-fair"

    def __init__(self, entitlements: Dict[str, float] = None) -> None:
        self.entitlements = dict(entitlements or {})

    def weights(
        self, local: DeviceDigest, fleet: Sequence[DeviceDigest]
    ) -> Dict[str, float]:
        raw = {
            name: self.entitlements.get(name, 1.0)
            for name in sorted(local.tenants)
        }
        return normalized(raw)


@register_global_policy
class ServerArbiter(GlobalPolicy):
    """Server-based central arbiter (cf. the predictable-GPU-access
    server design in PAPERS.md).

    Compares each tenant's observed fleet-wide usage against its fair
    share and steers local weights toward parity: tenants that consumed
    more than their share are down-weighted, under-served tenants are
    boosted.  Corrections are clamped and EMA-smoothed so one noisy
    interval cannot whipsaw the local schedulers.
    """

    name = "server"

    def __init__(
        self,
        smoothing: float = 0.5,
        floor: float = 0.25,
        ceiling: float = 4.0,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if floor <= 0 or ceiling < floor:
            raise ValueError("need 0 < floor <= ceiling")
        self.smoothing = smoothing
        self.floor = floor
        self.ceiling = ceiling
        self._smoothed: Dict[str, float] = {}

    def weights(
        self, local: DeviceDigest, fleet: Sequence[DeviceDigest]
    ) -> Dict[str, float]:
        observed: Dict[str, float] = {}
        for digest in fleet:
            for name, tenant in digest.tenants.items():
                observed[name] = (
                    observed.get(name, 0.0)
                    + tenant.observed_us
                    + tenant.overuse_us
                )
        total = sum(observed.values())
        raw: Dict[str, float] = {}
        for name in sorted(local.tenants):
            if total <= 0 or observed.get(name, 0.0) <= 0:
                target = 1.0
            else:
                fair = total / len(observed)
                target = fair / observed[name]
                target = min(self.ceiling, max(self.floor, target))
            previous = self._smoothed.get(name, 1.0)
            value = previous + self.smoothing * (target - previous)
            self._smoothed[name] = value
            raw[name] = value
        return normalized(raw)


@register_global_policy
class PartitionedShares(GlobalPolicy):
    """Static partition quotas (cf. the contention-aware partitioning
    work in PAPERS.md).

    Tenants belong to partitions — the name prefix before the first
    ``.``, or an explicit ``partition_of`` map — and each partition owns
    a quota (default 1.0) split evenly among its tenants on the device.
    Weights are then normalized to mean 1.0 per device, so equal-quota
    equal-population partitions degenerate to uniform DFQ.
    """

    name = "partitioned"

    def __init__(
        self,
        quotas: Dict[str, float] = None,
        partition_of: Dict[str, str] = None,
    ) -> None:
        self.quotas = dict(quotas or {})
        self.partition_of = dict(partition_of or {})

    def partition(self, tenant: str) -> str:
        explicit = self.partition_of.get(tenant)
        if explicit is not None:
            return explicit
        head, _, _ = tenant.partition(".")
        return head

    def weights(
        self, local: DeviceDigest, fleet: Sequence[DeviceDigest]
    ) -> Dict[str, float]:
        members: Dict[str, int] = {}
        for name in local.tenants:
            group = self.partition(name)
            members[group] = members.get(group, 0) + 1
        raw: Dict[str, float] = {}
        for name in sorted(local.tenants):
            group = self.partition(name)
            quota = self.quotas.get(group, 1.0)
            raw[name] = quota / members[group]
        return normalized(raw)
