"""The fleet CLI: ``repro fleet run|chaos|policies|placements``.

``repro fleet run --devices N --tenants M`` runs one fleet scenario per
seed on the experiment farm (``--workers``, shared result cache) and
prints a deterministic per-device rollup plus fleet-level summary.
``--window-us`` attaches the streaming monitor rig to every run
(windowed tables on stderr, stdout unchanged); ``--slo-jain-floor``
installs a ``fairness_floor`` SLO rule over the windowed per-tenant
shares, and ``--fail-on-violation`` turns any violation into exit
code 1 — that combination is the CI smoke job's fleet-level Jain gate.

``repro fleet chaos`` sweeps device-loss fault plans across the
placement policies and asserts the fleet protection invariants (lost
tenants migrate or escalate; bystanders are never killed or starved).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.experiments.parallel import (
    CellTiming,
    ResultCache,
    format_cell_timings,
    run_cells,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.registry import FLEET_DEVICE_LOSS
from repro.fleet.experiment import (
    FleetCellSpec,
    check_fleet_invariants,
    device_loss_plan,
    format_fleet_table,
    summarize_fleet,
    tenant_specs,
)
from repro.fleet.placement import placement_registry
from repro.fleet.policies import global_policy_registry

DEFAULT_DURATION_US = 200_000.0


def _parse_seeds(args: argparse.Namespace) -> List[int]:
    if args.seeds:
        return [int(part) for part in args.seeds.split(",") if part != ""]
    return [args.seed]


def _parse_losses(
    entries: Sequence[str], duration_us: float
) -> Optional[FaultPlan]:
    """``--lose-device D[@MS]`` entries into one fault plan."""
    if not entries:
        return None
    specs = []
    names = []
    for entry in entries:
        device_part, _, at_part = entry.partition("@")
        device = int(device_part)
        at_us = float(at_part) * 1000.0 if at_part else duration_us / 2
        specs.append(
            FaultSpec(
                FLEET_DEVICE_LOSS,
                start_us=at_us,
                count=1,
                target_task=f"device{device}",
            )
        )
        names.append(f"d{device}")
    return FaultPlan(name="lose-" + "+".join(names), specs=tuple(specs))


def _parse_moves(entries: Sequence[str]) -> Tuple[Tuple[float, str, int], ...]:
    """``--migrate TENANT@MS:DST`` entries into run_fleet move tuples."""
    moves = []
    for entry in entries:
        tenant, _, rest = entry.partition("@")
        at_part, _, dst_part = rest.partition(":")
        if not tenant or not at_part or not dst_part:
            raise SystemExit(
                f"bad --migrate {entry!r}; expected TENANT@MS:DST"
            )
        moves.append((float(at_part) * 1000.0, tenant, int(dst_part)))
    return tuple(moves)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Multi-GPU fleet scenarios: placement, migration, "
        "and hierarchical fairness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one fleet scenario per seed")
    run.add_argument("--devices", type=int, default=1)
    run.add_argument("--tenants", type=int, default=4)
    run.add_argument("--scheduler", default="dfq")
    run.add_argument(
        "--placement", default="least-loaded",
        choices=sorted(placement_registry),
    )
    run.add_argument(
        "--policy", default="fleet-fair",
        choices=sorted(global_policy_registry),
    )
    run.add_argument("--request-us", type=float, default=800.0)
    run.add_argument("--sleep-ratio", type=float, default=0.0)
    run.add_argument("--jitter", type=float, default=0.0)
    run.add_argument(
        "--partitions", type=int, default=1,
        help="tenant name partitions (p0., p1., ...) for affinity/quotas",
    )
    run.add_argument("--duration-ms", type=float, default=None)
    run.add_argument("--warmup-ms", type=float, default=None)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--seeds", default=None,
        help="comma-separated seed list (overrides --seed)",
    )
    run.add_argument(
        "--migrate", action="append", default=[], metavar="TENANT@MS:DST",
        help="request a planned migration (commits at the source's next "
        "engagement boundary); repeatable",
    )
    run.add_argument(
        "--lose-device", action="append", default=[], metavar="D[@MS]",
        help="inject fleet.device_loss for device D at MS milliseconds "
        "(default: mid-run); repeatable",
    )
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--no-cache", action="store_true")
    run.add_argument("--cache-dir", type=Path, default=None)
    run.add_argument(
        "--window-us", type=float, default=None,
        help="attach the streaming monitor rig with this window width",
    )
    run.add_argument(
        "--slo-jain-floor", type=float, default=None,
        help="install a fairness_floor SLO rule at this Jain threshold "
        "(needs --window-us)",
    )
    run.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit 1 if any monitored SLO rule fired or any fleet "
        "invariant is violated",
    )
    run.add_argument(
        "--quiet", action="store_true",
        help="suppress per-window lines (summary only)",
    )
    run.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="export the monitored trace stream (device-tagged records "
        "across all seeds) as JSONL for 'repro why' / span analysis; "
        "implies the monitor rig",
    )

    chaos = sub.add_parser(
        "chaos", help="device-loss matrix across placement policies"
    )
    chaos.add_argument("--devices", type=int, default=3)
    chaos.add_argument("--tenants", type=int, default=9)
    chaos.add_argument("--scheduler", default="dfq")
    chaos.add_argument("--policy", default="fleet-fair")
    chaos.add_argument("--request-us", type=float, default=800.0)
    chaos.add_argument("--duration-ms", type=float, default=None)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=1)
    chaos.add_argument("--no-cache", action="store_true")
    chaos.add_argument("--cache-dir", type=Path, default=None)

    sub.add_parser("policies", help="list global fair-share policies")
    sub.add_parser("placements", help="list placement policies")
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    duration_us = (
        args.duration_ms * 1000.0
        if args.duration_ms is not None
        else DEFAULT_DURATION_US
    )
    warmup_us = (
        args.warmup_ms * 1000.0
        if args.warmup_ms is not None
        else min(duration_us / 4, 50_000.0)
    )
    if args.slo_jain_floor is not None and args.window_us is None:
        print("--slo-jain-floor needs --window-us", file=sys.stderr)
        return 2
    fault_plan = _parse_losses(args.lose_device, duration_us)
    moves = _parse_moves(args.migrate)
    seeds = _parse_seeds(args)
    workloads = tenant_specs(
        args.tenants,
        request_size_us=args.request_us,
        sleep_ratio=args.sleep_ratio,
        jitter_sigma=args.jitter,
        partitions=args.partitions,
    )
    specs = [
        FleetCellSpec(
            devices=args.devices,
            scheduler=args.scheduler,
            workloads=workloads,
            duration_us=duration_us,
            warmup_us=warmup_us,
            seed=seed,
            placement=args.placement,
            policy=args.policy,
            fault_plan=fault_plan,
            moves=moves,
        )
        for seed in seeds
    ]

    session = None
    stack = None
    if args.window_us is not None or args.trace_out is not None:
        from contextlib import ExitStack

        from repro.obs.monitor import DEFAULT_WINDOW_US, MonitorSession, monitoring
        from repro.obs.slo import SloRule
        from repro.obs.windows import WindowConfig
        from repro.sim.trace import TraceRecorder

        rules = ()
        if args.slo_jain_floor is not None:
            rules = (
                SloRule(
                    "fleet-jain-floor", "fairness_floor",
                    args.slo_jain_floor,
                ),
            )
        session = MonitorSession(
            WindowConfig(
                window_us=(
                    args.window_us if args.window_us is not None
                    else DEFAULT_WINDOW_US
                )
            ),
            rules,
            line_sink=lambda line: print(line, file=sys.stderr),
            # --trace-out alone taps the stream without window chatter.
            render_windows=not args.quiet and args.window_us is not None,
            record_stream=(
                TraceRecorder() if args.trace_out is not None else None
            ),
        )
        stack = ExitStack()
        stack.enter_context(monitoring(session))

    cache = None if (args.no_cache or session is not None) else ResultCache(
        args.cache_dir
    )
    timings: list[CellTiming] = []
    try:
        all_results = run_cells(
            specs,
            workers=1 if session is not None else args.workers,
            cache=cache,
            timings=timings,
        )
    finally:
        if stack is not None:
            stack.close()

    if args.trace_out is not None and session is not None:
        from repro.obs.export import save_trace

        count = save_trace(session.record_stream, args.trace_out)
        print(
            f"fleet run: {count} trace records written to {args.trace_out}",
            file=sys.stderr,
        )

    print(
        f"fleet run: {args.devices} device(s), {args.tenants} tenant(s), "
        f"scheduler={args.scheduler}, placement={args.placement}, "
        f"policy={args.policy}"
    )
    invariant_violations: list[str] = []
    for seed, results in zip(seeds, all_results):
        print()
        print(f"seed {seed}:")
        print(format_fleet_table(results))
        if fault_plan is not None:
            for violation in check_fleet_invariants(results):
                invariant_violations.append(f"seed {seed}: {violation}")
    for violation in invariant_violations:
        print(f"INVARIANT VIOLATION: {violation}")
    if timings:
        print(f"[fleet] {format_cell_timings(timings)}", file=sys.stderr)
    if session is not None:
        print(
            f"monitor: {session.windows_closed} windows, "
            f"{session.violations} violations, "
            f"{session.recoveries} recoveries "
            f"across {len(session.monitors)} runs",
            file=sys.stderr,
        )
    if args.fail_on_violation:
        if invariant_violations:
            return 1
        if session is not None and session.violations:
            return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    duration_us = (
        args.duration_ms * 1000.0
        if args.duration_ms is not None
        else DEFAULT_DURATION_US
    )
    warmup_us = min(duration_us / 4, 50_000.0)
    workloads = tenant_specs(
        args.tenants, request_size_us=args.request_us,
        partitions=max(1, args.devices),
    )
    scenarios: list[tuple[str, FleetCellSpec]] = []
    for placement in sorted(placement_registry):
        scenarios.append(
            (
                placement,
                FleetCellSpec(
                    devices=args.devices,
                    scheduler=args.scheduler,
                    workloads=workloads,
                    duration_us=duration_us,
                    warmup_us=warmup_us,
                    seed=args.seed,
                    placement=placement,
                    policy=args.policy,
                    fault_plan=device_loss_plan(0, duration_us / 2),
                ),
            )
        )
    # The no-survivor escalation case: a fleet of one loses its only
    # device; its tenants must escalate (killed, reason recorded).
    scenarios.append(
        (
            "escalation",
            FleetCellSpec(
                devices=1,
                scheduler=args.scheduler,
                workloads=tenant_specs(2, request_size_us=args.request_us),
                duration_us=duration_us,
                warmup_us=warmup_us,
                seed=args.seed,
                placement="least-loaded",
                policy=args.policy,
                fault_plan=device_loss_plan(0, duration_us / 2),
            ),
        )
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    timings: list[CellTiming] = []
    all_results = run_cells(
        [spec for _, spec in scenarios],
        workers=args.workers, cache=cache, timings=timings,
    )
    from repro.metrics.tables import format_table

    rows = []
    failed = False
    for (label, _spec), results in zip(scenarios, all_results):
        summary = summarize_fleet(results)
        violations = check_fleet_invariants(results)
        escalated = sum(
            1
            for result in results.values()
            if result.kill_reason == "device lost"
        )
        if label == "escalation":
            # Whole-fleet loss: every tenant must escalate, none migrate.
            if summary.loss_moves:
                violations.append(
                    f"{summary.loss_moves} migration(s) with no survivor"
                )
            if escalated != summary.tenants:
                violations.append(
                    f"only {escalated}/{summary.tenants} tenants escalated"
                )
        if violations:
            failed = True
        rows.append(
            (
                label,
                summary.devices,
                summary.tenants,
                summary.devices_lost,
                summary.loss_moves,
                escalated,
                f"{summary.jain:.3f}",
                "FAIL" if violations else "ok",
            )
        )
    print(
        format_table(
            ("scenario", "devices", "tenants", "lost", "migrated",
             "escalated", "jain", "verdict"),
            rows,
            title="fleet chaos: device loss, migration-based recovery",
        )
    )
    for (label, _spec), results in zip(scenarios, all_results):
        for violation in check_fleet_invariants(results):
            print(f"INVARIANT VIOLATION [{label}]: {violation}")
    if timings:
        print(
            f"[fleet chaos] {format_cell_timings(timings)}", file=sys.stderr
        )
    return 1 if failed else 0


def cmd_policies(_args: argparse.Namespace) -> int:
    for name in sorted(global_policy_registry):
        cls = global_policy_registry[name]
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:12s} {summary}")
    return 0


def cmd_placements(_args: argparse.Namespace) -> int:
    for name in sorted(placement_registry):
        cls = placement_registry[name]
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{name:18s} {summary}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "policies":
        return cmd_policies(args)
    return cmd_placements(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
