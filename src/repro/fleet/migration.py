"""Task migration between fleet devices — at engagement boundaries only.

The protocol has two cooperating halves:

1. :meth:`MigrationManager.request` flags a pending move on the tenant.
   The tenant (:class:`~repro.fleet.tenants.FleetTenant`) *parks* at its
   next round boundary: nothing in flight, channel quiescent.
2. The manager's engagement-boundary hook — registered on the source
   device's scheduler via ``SchedulerBase.boundary_hooks`` and run
   inside the engagement episode, after the barrier is up and every
   channel has drained through the existing DrainWatchdog ladder —
   commits each parked move: tears down the source task (contexts
   killed, scheduler state released), charges
   ``CostParams.migration_cost_us`` into the source device's episode,
   rebinds the tenant to the target kernel, and resumes it; the tenant
   re-creates its context/channel on the target as its next action.

A tenant that is mid-request when a move is requested keeps running
until it parks, so migration can never yank state out from under an
in-flight submission; a tenant killed while parked simply drops the
move.  Device-loss recovery takes a different path (the registry's
``reincarnate``) because the source device is gone — only *planned*
moves carry the boundary-only guarantee, which is what the property
tests pin for ``reason="rebalance"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.registry import FleetEnv
    from repro.fleet.tenants import FleetTenant
    from repro.sim.events import Event


@dataclass
class PendingMove:
    """One requested move, waiting for its tenant to park."""

    tenant: "FleetTenant"
    src: int
    dst: int
    reason: str
    #: Triggered by the manager once the tenant is rebound to the target.
    resumed: "Event"
    #: Set by the tenant when it reaches its park point.
    parked: bool = False


@dataclass(frozen=True)
class MigrationRecord:
    """One completed migration (planned or device-loss recovery)."""

    time_us: float
    task: str
    src: int
    dst: int
    reason: str
    cost_us: float


class MigrationManager:
    """Owns pending moves and the per-scheduler boundary hooks."""

    def __init__(self, fleet: "FleetEnv") -> None:
        self.fleet = fleet
        self.records: List[MigrationRecord] = []
        self._pending: Dict[int, List[PendingMove]] = {}
        self._hooked: set = set()

    def request(
        self, tenant: "FleetTenant", dst: int, reason: str = "rebalance"
    ) -> PendingMove:
        """Ask for ``tenant`` to move to device ``dst``.

        The move commits at the source scheduler's next engagement
        boundary after the tenant parks; until then the tenant keeps
        submitting on the source.
        """
        fleet = self.fleet
        src = fleet.device_of(tenant)
        if dst == src:
            raise ValueError(f"tenant {tenant.name!r} already on device {dst}")
        if not 0 <= dst < len(fleet.stacks):
            raise ValueError(f"no such device: {dst}")
        if fleet.stacks[dst].lost:
            raise ValueError(f"device {dst} was lost")
        if tenant._move is not None:
            raise ValueError(f"tenant {tenant.name!r} already has a pending move")
        move = PendingMove(tenant, src, dst, reason, fleet.sim.event())
        tenant._move = move
        self._pending.setdefault(src, []).append(move)
        if src not in self._hooked:
            self._hooked.add(src)
            fleet.stacks[src].scheduler.boundary_hooks.append(
                self._hook_for(src)
            )
        return move

    # ------------------------------------------------------------------
    # The engagement-boundary hook (a generator, run by the scheduler)
    # ------------------------------------------------------------------
    def _hook_for(self, src: int):
        def boundary_hook(_scheduler):
            yield from self._commit_parked(src)

        return boundary_hook

    def _commit_parked(self, src: int):
        moves = self._pending.get(src, [])
        for move in list(moves):
            if move.tenant._move is not move:
                # Lapsed: the tenant was reincarnated elsewhere (device
                # loss beat us to it) or already resumed.
                moves.remove(move)
                continue
            if move.tenant.task is None or not move.tenant.task.alive:
                moves.remove(move)  # killed while pending; move lapses
                continue
            if not move.parked:
                continue  # still mid-round; next boundary picks it up
            moves.remove(move)
            if self.fleet.stacks[move.dst].lost:
                # Target vanished while we waited: abandon the move and
                # resume the tenant in place on the source.
                move.tenant._move = None
                move.resumed.trigger()
                continue
            yield from self._commit(move)

    def _commit(self, move: PendingMove):
        fleet = self.fleet
        tenant = move.tenant
        src_stack = fleet.stacks[move.src]
        dst_stack = fleet.stacks[move.dst]
        src_trace = src_stack.trace
        if src_trace.enabled:
            src_trace.emit(
                fleet.sim.now, "fleet", events.FLEET_MIGRATE_BEGIN,
                task=tenant.name, src=move.src, dst=move.dst,
                reason=move.reason,
            )
        # Tear down on the source: contexts killed, scheduler state
        # (virtual time, engagement tracking) released via on_task_exit.
        process = tenant.task.process
        src_stack.kernel.exit_task(tenant.task)
        cost = fleet.costs.migration_cost_us
        if cost > 0:
            # Charged inside the source device's engagement episode.
            yield cost
        # Rebind to the target; the tenant re-opens its context/channel
        # (context re-create) when it resumes.
        task = dst_stack.kernel.create_task(tenant.name)
        task.workload = tenant
        task.process = process
        tenant.kernel = dst_stack.kernel
        tenant.task = task
        tenant._pipelines.clear()
        fleet.note_move(tenant, move.src, move.dst, task)
        record = MigrationRecord(
            fleet.sim.now, tenant.name, move.src, move.dst, move.reason, cost
        )
        self.records.append(record)
        tenant.migrations.append(record)
        fleet.metrics.inc("fleet_migrations", tenant.name)
        dst_trace = dst_stack.trace
        if dst_trace.enabled:
            dst_trace.emit(
                fleet.sim.now, "fleet", events.FLEET_MIGRATE_END,
                task=tenant.name, src=move.src, dst=move.dst,
                reason=move.reason, cost_us=cost,
            )
        move.resumed.trigger()
