"""The global fair-share coordinator: digests in, weights out.

:class:`GlobalFairShare` subscribes to the fleet's shared trace recorder
as a live sink and maintains one :class:`~repro.fleet.policies.
DeviceDigest` per device from the interception-observable stream alone:

* ``share_sample`` — per-tenant usage the local schedulers attribute at
  engagement boundaries;
* ``overuse_charge`` — excess charged past slice/episode boundaries;
* ``request_complete`` — retired-request service time (the fallback
  basis when no shares have been sampled yet);
* ``task_exit`` — drops the tenant's digest from the device.

At each device's engagement tick (its ``freerun_start`` emission, i.e.
the moment its episode settles), the pluggable
:class:`~repro.fleet.policies.GlobalPolicy` recomputes that device's
local DFQ ``share_weights``.  Weight changes are traced as
``fleet.weight_update`` events.  Schedulers without a ``share_weights``
table (direct, timeslice) are observed but never re-weighted.

The coordinator never touches device or kernel ground truth — it is
wiring; the decision logic lives in the boundary-checked
:mod:`repro.fleet.policies`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fleet.policies import DeviceDigest, GlobalPolicy
from repro.obs import events
from repro.sim.trace import TraceRecord, TraceRecorder


class GlobalFairShare:
    """Live trace sink arbitrating cross-device shares."""

    def __init__(self, policy: GlobalPolicy, trace: TraceRecorder) -> None:
        self.policy = policy
        self.trace = trace
        self.digests: Dict[int, DeviceDigest] = {}
        self._schedulers: Dict[int, object] = {}
        self._applied: Dict[int, Dict[str, float]] = {}
        #: Weight recomputations that changed at least one tenant.
        self.updates = 0

    def watch(self, device_id: int, scheduler) -> None:
        """Register a device's local scheduler for re-weighting."""
        self._schedulers[device_id] = scheduler
        self.digests.setdefault(device_id, DeviceDigest(device_id))

    def digest(self, device_id: int) -> DeviceDigest:
        digest = self.digests.get(device_id)
        if digest is None:
            digest = self.digests[device_id] = DeviceDigest(device_id)
        return digest

    # -- sink protocol --------------------------------------------------
    def __call__(self, record: TraceRecord) -> None:
        kind = record.kind
        payload = record.payload
        if kind == events.SHARE_SAMPLE:
            digest = self.digest(payload.get("device", 0))
            digest.tenant(payload["task"]).usage_us += payload["usage_us"]
        elif kind == events.REQUEST_COMPLETE:
            digest = self.digest(payload.get("device", 0))
            tenant = digest.tenant(payload["task"])
            tenant.completions += 1
            tenant.service_us += payload.get("service_us", 0.0)
        elif kind == events.OVERUSE_CHARGE:
            digest = self.digest(payload.get("device", 0))
            digest.tenant(payload["task"]).overuse_us += payload.get(
                "excess_us", 0.0
            )
        elif kind == events.TASK_EXIT:
            digest = self.digest(payload.get("device", 0))
            digest.tenants.pop(payload["task"], None)
        elif kind == events.FREERUN_START:
            self._tick(payload.get("device", 0), record.time)

    # -- engagement tick ------------------------------------------------
    def _tick(self, device_id: int, now: float) -> None:
        scheduler = self._schedulers.get(device_id)
        if scheduler is None:
            return
        weights = getattr(scheduler, "share_weights", None)
        if weights is None:
            return
        local = self.digest(device_id)
        local.ticks += 1
        fleet = [self.digests[d] for d in sorted(self.digests)]
        assigned = self.policy.weights(local, fleet)
        changed = {
            name: value
            for name, value in sorted(assigned.items())
            if weights.get(name, 1.0) != value
        }
        weights.update(assigned)
        if not changed:
            return
        self.updates += 1
        self._applied[device_id] = dict(assigned)
        if self.trace.enabled:
            self.trace.emit(
                now, "fleet", events.FLEET_WEIGHT_UPDATE,
                policy=self.policy.name, weights=changed, device=device_id,
            )

    def applied(self, device_id: int) -> Optional[Dict[str, float]]:
        """Last weight table applied to a device (None before any tick)."""
        return self._applied.get(device_id)
