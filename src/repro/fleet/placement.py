"""Task-to-device placement policies for the fleet registry.

``Placement.assign(task) -> device_id`` decides which device a tenant's
stack lives on.  All policies are deterministic pure functions of the
tenant name and the registry's current occupancy — never of wall time,
process identity, or Python's salted ``hash()`` — so the same scenario
places identically across runs, worker pools, and machines (the
placement-determinism tests pin this).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, Type


def stable_hash(text: str) -> int:
    """Deterministic 64-bit hash (sha256 prefix); never ``hash()``."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def partition_of(tenant: str, explicit: Optional[Dict[str, str]] = None) -> str:
    """A tenant's partition: explicit map, else name prefix before '.'."""
    if explicit is not None:
        mapped = explicit.get(tenant)
        if mapped is not None:
            return mapped
    head, _, _ = tenant.partition(".")
    return head


class PlacementPolicy:
    """Base class.  ``bind`` is called once with the device-id list."""

    #: Registry key and display name.
    name = "base"

    def __init__(self) -> None:
        self.device_ids: tuple[int, ...] = ()
        #: Tenants currently placed per device (maintained by the
        #: registry: assignment adds, migration moves, loss evacuates).
        self.occupancy: Dict[int, int] = {}

    def bind(self, device_ids: Sequence[int]) -> None:
        self.device_ids = tuple(device_ids)
        self.occupancy = {device_id: 0 for device_id in self.device_ids}

    def candidates(
        self, exclude: Sequence[int] = ()
    ) -> tuple[int, ...]:
        barred = set(exclude)
        return tuple(d for d in self.device_ids if d not in barred)

    def assign(self, tenant: str, exclude: Sequence[int] = ()) -> int:
        """Pick a device for ``tenant``; ``exclude`` bars lost devices."""
        raise NotImplementedError

    # -- occupancy bookkeeping (called by the registry) -----------------
    def placed(self, device_id: int) -> None:
        self.occupancy[device_id] = self.occupancy.get(device_id, 0) + 1

    def departed(self, device_id: int) -> None:
        count = self.occupancy.get(device_id, 0)
        self.occupancy[device_id] = max(0, count - 1)


#: Name → class map used by the fleet registry and the CLI.
placement_registry: Dict[str, Type[PlacementPolicy]] = {}


def register_placement(cls: Type[PlacementPolicy]) -> Type[PlacementPolicy]:
    """Class decorator adding a placement policy to the registry."""
    placement_registry[cls.name] = cls
    return cls


@register_placement
class LeastLoaded(PlacementPolicy):
    """Fewest resident tenants wins; ties break to the lowest id."""

    name = "least-loaded"

    def assign(self, tenant: str, exclude: Sequence[int] = ()) -> int:
        candidates = self.candidates(exclude)
        if not candidates:
            raise ValueError("no live device to place on")
        return min(
            candidates, key=lambda d: (self.occupancy.get(d, 0), d)
        )


@register_placement
class HashShard(PlacementPolicy):
    """Stable-hash the tenant name onto the live devices.

    Placement depends only on the name and the live-device list, so a
    tenant lands on the same shard in every run and on every worker.
    """

    name = "hash-shard"

    def assign(self, tenant: str, exclude: Sequence[int] = ()) -> int:
        candidates = self.candidates(exclude)
        if not candidates:
            raise ValueError("no live device to place on")
        return candidates[stable_hash(tenant) % len(candidates)]


@register_placement
class PartitionAffinity(PlacementPolicy):
    """Keep a partition's tenants co-resident on one home device.

    The partition key (name prefix before the first ``.``, or an
    explicit map) stable-hashes to a home device; every tenant of the
    partition follows it there.  When the home is excluded (device
    loss), the partition re-homes onto the surviving device the same
    hash walk reaches — still deterministic, still co-resident.
    """

    name = "partition-affinity"

    def __init__(self, partition_map: Optional[Dict[str, str]] = None) -> None:
        super().__init__()
        self.partition_map = dict(partition_map or {})

    def assign(self, tenant: str, exclude: Sequence[int] = ()) -> int:
        candidates = self.candidates(exclude)
        if not candidates:
            raise ValueError("no live device to place on")
        group = partition_of(tenant, self.partition_map)
        return candidates[stable_hash(group) % len(candidates)]
