"""Multi-GPU fleet subsystem: registry, placement, hierarchical fairness.

See docs/FLEET.md.  The package splits along the same interception
boundary as the rest of the tree:

* :mod:`repro.fleet.policies` — global fair-share policies, pure math
  over interception-observable digests (boundary-checked by neonlint);
* :mod:`repro.fleet.placement` — deterministic task→device placement;
* :mod:`repro.fleet.share` — the trace-sink coordinator feeding digests
  to the policy and re-weighting local DFQs at engagement ticks;
* :mod:`repro.fleet.registry` — N device stacks in one simulator,
  device loss, reincarnation;
* :mod:`repro.fleet.migration` — planned moves at engagement boundaries;
* :mod:`repro.fleet.tenants` — migration-aware tenant workloads;
* :mod:`repro.fleet.experiment` — farm cells, tables, chaos invariants;
* :mod:`repro.fleet.cli` — ``repro fleet run|chaos|policies|placements``.
"""

from repro.fleet.experiment import (
    FleetCellSpec,
    check_fleet_invariants,
    device_loss_plan,
    format_fleet_table,
    summarize_fleet,
    tenant_specs,
)
from repro.fleet.migration import MigrationManager, MigrationRecord, PendingMove
from repro.fleet.placement import (
    PlacementPolicy,
    placement_registry,
    register_placement,
    stable_hash,
)
from repro.fleet.policies import (
    DeviceDigest,
    FleetFairShare,
    GlobalPolicy,
    PartitionedShares,
    ServerArbiter,
    TenantDigest,
    global_policy_registry,
    register_global_policy,
)
from repro.fleet.registry import (
    DeviceStack,
    FleetEnv,
    build_fleet_env,
    run_fleet,
)
from repro.fleet.share import GlobalFairShare
from repro.fleet.tenants import FleetTenant

__all__ = [
    "DeviceDigest",
    "DeviceStack",
    "FleetCellSpec",
    "FleetEnv",
    "FleetFairShare",
    "FleetTenant",
    "GlobalFairShare",
    "GlobalPolicy",
    "MigrationManager",
    "MigrationRecord",
    "PartitionedShares",
    "PendingMove",
    "PlacementPolicy",
    "ServerArbiter",
    "TenantDigest",
    "build_fleet_env",
    "check_fleet_invariants",
    "device_loss_plan",
    "format_fleet_table",
    "global_policy_registry",
    "placement_registry",
    "register_global_policy",
    "register_placement",
    "run_fleet",
    "stable_hash",
    "summarize_fleet",
    "tenant_specs",
]
