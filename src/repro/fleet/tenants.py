"""Fleet-aware tenant workloads.

A :class:`FleetTenant` is a Throttle-style request generator that
cooperates with the fleet's migration protocol:

* **planned migration** — the :class:`~repro.fleet.migration.
  MigrationManager` flags a pending move; the tenant *parks* at its next
  round boundary (nothing in flight, channel quiescent) and waits.  The
  move commits at the source scheduler's next engagement boundary —
  barrier up, every channel drained — where the manager tears the
  source task down, charges the migration cost, and rebinds the tenant
  to the target kernel.  The tenant then reopens its channel there.
* **device loss** — the registry marks the tenant for reincarnation and
  kills its task with the rest of the lost device.  The overridden
  ``_run`` catches the kill and, instead of dying, restarts the body as
  a fresh task on the surviving device the registry chose.  Without a
  survivor the kill stands (escalation), exactly like any other
  protective kill.

Round logs and request statistics span incarnations, so per-tenant
results aggregate across every device the tenant lived on.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import OutOfResourcesError
from repro.gpu.request import RequestKind
from repro.sim.process import ProcessKilled
from repro.workloads.base import Workload


class FleetTenant(Workload):
    """Controlled request generator that can move between devices."""

    def __init__(
        self,
        name: str,
        request_size_us: float = 25.0,
        sleep_ratio: float = 0.0,
        jitter_sigma: float = 0.0,
        request_kind: RequestKind = RequestKind.COMPUTE,
        partition: Optional[str] = None,
    ) -> None:
        if request_size_us <= 0:
            raise ValueError("request size must be positive")
        if not 0.0 <= sleep_ratio < 1.0:
            raise ValueError("sleep ratio must be in [0, 1)")
        super().__init__(name)
        self.request_size_us = request_size_us
        self.sleep_ratio = sleep_ratio
        self.jitter_sigma = jitter_sigma
        self.request_kind = request_kind
        #: Partition key for partition-affinity placement and the
        #: partitioned global policy (defaults to the name's '.'-prefix).
        self.partition = (
            partition if partition is not None else name.partition(".")[0]
        )
        #: Set by the fleet registry at placement time.
        self.fleet = None
        #: Pending planned move (repro.fleet.migration.PendingMove).
        self._move = None
        #: Surviving device stack chosen at device loss, if any.
        self._reincarnation = None
        #: Completed moves, by reason ("rebalance" / "device_loss").
        self.migrations: list = []

    @property
    def sleep_us(self) -> float:
        """Idle time per request achieving the configured off ratio."""
        if self.sleep_ratio == 0.0:
            return 0.0
        return self.request_size_us * self.sleep_ratio / (1.0 - self.sleep_ratio)

    # ------------------------------------------------------------------
    # Body: Throttle loop with a park point at each round top
    # ------------------------------------------------------------------
    def body(self):
        channel = self.open_channel(self.request_kind)
        while True:
            move = self._move
            if move is not None:
                channel = yield from self._park(move)
                continue
            start = self.sim.now
            size = (
                self.jittered(self.request_size_us, self.jitter_sigma)
                if self.jitter_sigma > 0
                else self.request_size_us
            )
            yield from self.submit(channel, size)
            self.rounds.record(start, self.sim.now)
            if self.sleep_us > 0:
                yield self.sleep_us

    def _park(self, move):
        """Quiesce for a planned move; resumes on the target device."""
        move.parked = True
        yield move.resumed
        self._move = None
        return self.open_channel(self.request_kind)

    # ------------------------------------------------------------------
    # Lifecycle: reincarnate on device loss
    # ------------------------------------------------------------------
    def _run(self):
        try:
            yield from self.body()
        except ProcessKilled:
            destination = self._reincarnation
            if destination is None or self.fleet is None:
                self.killed = True
                return
            self._reincarnation = None
            self._move = None
            # The registry rebinds us to the surviving device and spawns
            # a fresh process running this generator again.
            self.fleet.reincarnate(self, destination)
            return
        except OutOfResourcesError as error:
            self.setup_error = error
        self.kernel.exit_task(self.task)
