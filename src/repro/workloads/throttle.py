"""The Throttle microbenchmark (Section 5.1).

Makes repetitive blocking compute requests of a user-specified size, with
optional idle ("off") time between requests to model nonsaturating
workloads.  A round is one request; recorded round times exclude the
deliberate sleep, so slowdown measures scheduling delay only.
"""

from __future__ import annotations

from typing import Optional

from repro.gpu.request import RequestKind
from repro.workloads.base import Workload


class Throttle(Workload):
    """Controlled, saturating-or-not request generator."""

    def __init__(
        self,
        request_size_us: float,
        sleep_ratio: float = 0.0,
        name: Optional[str] = None,
        kind: RequestKind = RequestKind.COMPUTE,
        jitter_sigma: float = 0.0,
    ) -> None:
        if request_size_us <= 0:
            raise ValueError("request size must be positive")
        if not 0.0 <= sleep_ratio < 1.0:
            raise ValueError("sleep ratio must be in [0, 1)")
        label = name or f"throttle-{request_size_us:g}us"
        super().__init__(label)
        self.request_size_us = request_size_us
        self.sleep_ratio = sleep_ratio
        self.kind = kind
        self.jitter_sigma = jitter_sigma

    @property
    def sleep_us(self) -> float:
        """Idle time per request achieving the configured off ratio."""
        if self.sleep_ratio == 0.0:
            return 0.0
        return self.request_size_us * self.sleep_ratio / (1.0 - self.sleep_ratio)

    def body(self):
        channel = self.open_channel(self.kind)
        while True:
            start = self.sim.now
            size = (
                self.jittered(self.request_size_us, self.jitter_sigma)
                if self.jitter_sigma > 0
                else self.request_size_us
            )
            yield from self.submit(channel, size)
            self.rounds.record(start, self.sim.now)
            if self.sleep_us > 0:
                yield self.sleep_us
