"""Workload models.

:class:`~repro.workloads.throttle.Throttle` is the paper's controlled
microbenchmark (request size and sleep ratio are free parameters).  The
Table 1 applications are modeled as per-round request mixtures calibrated
to the paper's measured round times and average request sizes
(:mod:`~repro.workloads.profiles`), executed by
:class:`~repro.workloads.apps.ProfiledApp`.  Adversarial workloads for the
protection experiments live in :mod:`~repro.workloads.adversarial`.
"""

from repro.workloads.adversarial import (
    ChannelHog,
    GreedyBatcher,
    InfiniteKernel,
    MemoryHog,
)
from repro.workloads.apps import ProfiledApp, make_app
from repro.workloads.base import Workload
from repro.workloads.profiles import APP_PROFILES, AppProfile, RequestBurst
from repro.workloads.throttle import Throttle
from repro.workloads.traces import (
    TraceEntry,
    TraceWorkload,
    load_trace_csv,
    save_trace_csv,
    synthesize_poisson_trace,
)

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "ChannelHog",
    "GreedyBatcher",
    "InfiniteKernel",
    "MemoryHog",
    "ProfiledApp",
    "RequestBurst",
    "Throttle",
    "TraceEntry",
    "TraceWorkload",
    "Workload",
    "load_trace_csv",
    "make_app",
    "save_trace_csv",
    "synthesize_poisson_trace",
]
