"""Adversarial and misbehaving workloads for the protection experiments.

These exercise the paper's safety claims: an infinite-loop compute request
(the Section 3.1 denial-of-service), a greedy batcher that inflates its
request sizes to hog a work-conserving device, and a channel hog mounting
the Section 6.3 channel-exhaustion attack.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.gpu.device import OutOfResourcesError
from repro.gpu.request import RequestKind
from repro.workloads.base import Workload


class InfiniteKernel(Workload):
    """Behaves normally for a while, then submits a request that never
    completes.  A fair-and-safe scheduler must detect and kill it."""

    def __init__(
        self,
        normal_size_us: float = 100.0,
        normal_requests: int = 20,
        name: str = "infinite-kernel",
    ) -> None:
        super().__init__(name)
        self.normal_size_us = normal_size_us
        self.normal_requests = normal_requests

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        for _ in range(self.normal_requests):
            start = self.sim.now
            yield from self.submit(channel, self.normal_size_us)
            self.rounds.record(start, self.sim.now)
        # The attack: a compute kernel with an infinite loop.
        yield from self.submit(channel, math.inf)


class GreedyBatcher(Workload):
    """A selfish application that batches work into outsized requests to
    grab a larger share of a work-conserving device (Section 1)."""

    def __init__(
        self,
        work_unit_us: float = 50.0,
        batch_factor: int = 20,
        name: str = "greedy-batcher",
    ) -> None:
        super().__init__(name)
        self.work_unit_us = work_unit_us
        self.batch_factor = batch_factor

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        batch_size = self.work_unit_us * self.batch_factor
        while True:
            start = self.sim.now
            yield from self.submit(channel, batch_size)
            # One round is one batch = batch_factor units of useful work.
            self.rounds.record(start, self.sim.now)


class MemoryHog(Workload):
    """Allocates device memory in large chunks until refused — the memory
    half of Section 6.3's abuse scenarios."""

    def __init__(self, chunk_mib: float = 128.0, name: str = "memory-hog") -> None:
        super().__init__(name)
        self.chunk_mib = chunk_mib
        self.allocated_mib = 0.0
        self.denied: Optional[str] = None

    def body(self):
        context = self.kernel.open_context(self.task)
        try:
            while True:
                self.kernel.allocate_memory(self.task, context, self.chunk_mib)
                self.allocated_mib += self.chunk_mib
                yield 5.0  # an allocation syscall's worth of time
        except OutOfResourcesError as error:
            self.denied = str(error)
        yield self.sim.event()  # hold the memory and idle forever


class ChannelHog(Workload):
    """Opens contexts and channels until the device (or the quota policy)
    refuses, then sits on them — the Section 6.3 DoS."""

    def __init__(self, name: str = "channel-hog") -> None:
        super().__init__(name)
        self.contexts_opened = 0
        self.channels_opened = 0
        self.denied: Optional[str] = None

    def body(self):
        try:
            while True:
                context = self.kernel.open_context(self.task)
                self.contexts_opened += 1
                for kind in (RequestKind.COMPUTE, RequestKind.DMA):
                    self.kernel.open_channel(self.task, context, kind)
                    self.channels_opened += 1
                yield 1.0  # a syscall's worth of setup time per context
        except OutOfResourcesError as error:
            self.denied = str(error)
        # Hold everything and idle forever.
        yield self.sim.event()
