"""Workload base class.

A workload owns one :class:`~repro.osmodel.task.Task` and a generator
``body`` that submits requests through the kernel, paying the appropriate
virtual-time costs.  It records round boundaries (for the paper's
user-visible performance metric) and keeps the submitted requests for
post-run statistics (Table 1, Figure 2).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import math

from repro.errors import OutOfResourcesError
from repro.gpu.request import Request, RequestKind
from repro.metrics.rounds import RoundLog, RoundStats
from repro.sim.process import ProcessKilled

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.kernel import Kernel
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngRegistry


class Workload:
    """Base class for all workload models."""

    #: How requests reach the device: "mmio" (direct-mapped interface,
    #: possibly intercepted), "syscall" (trap per request, Section 3's
    #: comparison stack), or "syscall+driver" (trap plus nontrivial driver
    #: routine work).
    submit_mode = "mmio"

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None
        self.kernel: Optional["Kernel"] = None
        self.task = None
        self.rounds = RoundLog()
        self.requests: list[Request] = []
        self.killed = False
        self.setup_error: Optional[Exception] = None
        self._pipelines: dict[int, deque] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, sim: "Simulator", kernel: "Kernel", rng: "RngRegistry") -> None:
        """Create the task and spawn the workload body."""
        self.sim = sim
        self.kernel = kernel
        self.rng = rng.stream(f"workload.{self.name}")
        self._normals = rng.normals(f"workload.{self.name}")
        self.task = kernel.create_task(self.name)
        self.task.workload = self
        self.task.process = sim.spawn(self._run(), name=f"task.{self.name}")

    def _run(self):
        try:
            yield from self.body()
        except ProcessKilled:
            self.killed = True
            return
        except OutOfResourcesError as error:
            # A real application would die with an allocation error; record
            # it so experiments can observe the lock-out (Section 6.3).
            self.setup_error = error
        self.kernel.exit_task(self.task)

    def body(self):
        """The workload's behaviour; subclasses must implement (generator)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Submission helpers
    # ------------------------------------------------------------------
    def open_channel(self, kind: RequestKind, context=None) -> "Channel":
        """Open (and lazily create) a context plus one channel."""
        if context is None:
            if not self.task.contexts:
                self.kernel.open_context(self.task)
            context = self.task.contexts[0]
        return self.kernel.open_channel(self.task, context, kind)

    def submit(self, channel: "Channel", size_us: float, blocking: bool = True):
        """Submit one request; when blocking, waits for its completion.

        A generator — drive with ``yield from``.  Returns the completion
        event (already triggered for blocking requests).
        """
        request = Request(channel.kind, size_us, blocking)
        self.requests.append(request)
        if self.submit_mode == "mmio":
            completion = yield from self.kernel.submit(self.task, channel, request)
        else:
            driver_work = self.submit_mode == "syscall+driver"
            completion = yield from self.kernel.submit_via_syscall(
                self.task, channel, request, driver_work
            )
        if blocking:
            yield completion
        return completion

    def submit_burst(self, channel: "Channel", sizes_us: list):
        """Submit a burst of non-blocking requests as one batch.

        A generator — drive with ``yield from``.  Uses the kernel's
        batched doorbell path, so the back-to-back enqueues coalesce into
        a single engine wake event.  Returns the completion events in
        submission order.
        """
        requests = [Request(channel.kind, size_us, False) for size_us in sizes_us]
        self.requests.extend(requests)
        completions = yield from self.kernel.submit_batch(
            self.task, channel, requests
        )
        return completions

    def submit_pipelined(self, channel: "Channel", size_us: float, depth: int):
        """Submit a non-blocking request, bounding outstanding ones.

        Models the user-level library's asynchronous pipelining: up to
        ``depth`` requests per channel may be in flight; beyond that the
        submitter waits for the oldest.
        """
        pipeline = self._pipelines.setdefault(channel.channel_id, deque())
        while len(pipeline) >= depth:
            oldest = pipeline.popleft()
            if not oldest.triggered:
                yield oldest
        completion = yield from self.submit(channel, size_us, blocking=False)
        pipeline.append(completion)
        return completion

    def drain_pipeline(self, channel: Optional["Channel"] = None):
        """Wait for all in-flight pipelined requests (one channel or all)."""
        if channel is not None:
            pipelines = [self._pipelines.get(channel.channel_id, deque())]
        else:
            pipelines = list(self._pipelines.values())
        for pipeline in pipelines:
            while pipeline:
                oldest = pipeline.popleft()
                if not oldest.triggered:
                    yield oldest

    def cpu_work(self, duration_us: float):
        """Consume CPU time (think/compute); contends for cores when the
        kernel is configured with a finite pool (a generator)."""
        if duration_us <= 0:
            return
        yield from self.kernel.cpu_time(duration_us, self.name)

    def jittered(self, mean_us: float, sigma: float = 0.08) -> float:
        """A mean-preserving lognormal jitter around ``mean_us``."""
        if mean_us <= 0 or sigma <= 0:
            return max(mean_us, 0.0)
        # Batched standard normals scaled by sigma: bit-identical to
        # ``self.rng.normal(0.0, sigma)`` one call at a time, without the
        # per-draw numpy dispatch (see repro.sim.rng.BatchedNormals).
        draw = self._normals.draw() * sigma
        return mean_us * math.exp(draw - sigma * sigma / 2.0)

    # ------------------------------------------------------------------
    # Post-run statistics
    # ------------------------------------------------------------------
    def round_stats(
        self, warmup_us: float = 0.0, until_us: Optional[float] = None
    ) -> RoundStats:
        return self.rounds.stats(warmup_us, until_us)

    def mean_request_size(self, kinds: Optional[set] = None) -> float:
        """Mean submitted request size (µs), optionally filtered by kind.

        DMA requests are excluded by default, matching Table 1's
        compute/graphics request sizes.
        """
        if kinds is None:
            kinds = {RequestKind.COMPUTE, RequestKind.GRAPHICS}
        sizes = [
            request.size_us
            for request in self.requests
            if request.kind in kinds and not math.isinf(request.size_us)
        ]
        if not sizes:
            return float("nan")
        return sum(sizes) / len(sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, rounds={len(self.rounds)})"
