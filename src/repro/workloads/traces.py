"""Trace-driven workloads.

Besides the closed-loop application models, experiments sometimes need
*open-loop* request streams — fixed submission times regardless of
completion progress (e.g. to replay a recorded production trace, or to
stress a scheduler with precisely shaped arrivals).  This module provides:

* :class:`TraceEntry` / :class:`TraceWorkload` — replay a list of
  (time, size, kind) submissions, open- or closed-loop;
* :func:`synthesize_poisson_trace` — Poisson arrivals with lognormal
  sizes, the standard synthetic stand-in when real traces are private;
* :func:`save_trace_csv` / :func:`load_trace_csv` — a plain-text trace
  interchange format.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Union

import numpy as np

from repro.gpu.request import RequestKind
from repro.workloads.base import Workload


@dataclass(frozen=True)
class TraceEntry:
    """One request in a trace."""

    at_us: float  # submission time relative to workload start
    size_us: float
    kind: RequestKind = RequestKind.COMPUTE

    def validate(self) -> None:
        if self.at_us < 0:
            raise ValueError("trace times must be non-negative")
        if self.size_us <= 0:
            raise ValueError("trace sizes must be positive")


class TraceWorkload(Workload):
    """Replays a trace.

    ``open_loop=True`` submits each entry at its recorded time (falling
    behind only by the submission path itself) with non-blocking requests;
    ``open_loop=False`` treats the inter-arrival gaps as think time and
    blocks on each request — a closed-loop replay.  A round is one
    request, timed from its scheduled submission to completion (i.e.
    open-loop rounds include queueing delay, the latency a trace consumer
    cares about).
    """

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        name: str = "trace",
        open_loop: bool = True,
        repeat: bool = False,
    ) -> None:
        super().__init__(name)
        self.entries = list(entries)
        for entry in self.entries:
            entry.validate()
        if not self.entries:
            raise ValueError("a trace needs at least one entry")
        if sorted(e.at_us for e in self.entries) != [
            e.at_us for e in self.entries
        ]:
            raise ValueError("trace entries must be time-ordered")
        self.open_loop = open_loop
        self.repeat = repeat

    def body(self):
        kinds = {entry.kind for entry in self.entries}
        # Open in sorted order so channel-id assignment (and with it the
        # whole trajectory) is independent of set hash order.
        channels = {
            kind: self.open_channel(kind)
            for kind in sorted(kinds, key=lambda kind: kind.value)
        }
        epoch = self.sim.now
        while True:
            for previous_at, entry in zip(
                [0.0] + [e.at_us for e in self.entries], self.entries
            ):
                if self.open_loop:
                    target = epoch + entry.at_us
                    if target > self.sim.now:
                        yield target - self.sim.now
                    scheduled = self.sim.now
                    completion = yield from self.submit(
                        channels[entry.kind], entry.size_us, blocking=False
                    )
                    completion.add_callback(
                        lambda ev, s=scheduled: self.rounds.record(s, self.sim.now)
                    )
                else:
                    gap = entry.at_us - previous_at
                    if gap > 0:
                        yield gap
                    start = self.sim.now
                    yield from self.submit(channels[entry.kind], entry.size_us)
                    self.rounds.record(start, self.sim.now)
            if not self.repeat:
                break
            epoch = self.sim.now
        # Open-loop: wait out any stragglers before exiting.
        yield from self.drain_pipeline()


def synthesize_poisson_trace(
    rng: np.random.Generator,
    rate_per_ms: float,
    mean_size_us: float,
    duration_us: float,
    size_sigma: float = 0.5,
    kind: RequestKind = RequestKind.COMPUTE,
) -> list[TraceEntry]:
    """Poisson arrivals with lognormal service sizes.

    Draws are vectorized in blocks — one ``standard_exponential`` block
    for the inter-arrival gaps, one ``normal`` block for the sizes — so
    synthesizing a long trace costs a handful of numpy calls instead of
    two per entry.  For a given generator state the output is fully
    deterministic; within each distribution the draws are consumed in
    stream order (the final block may draw a few variates beyond the
    horizon — the price of vectorizing ahead).
    """
    if rate_per_ms <= 0 or mean_size_us <= 0 or duration_us <= 0:
        raise ValueError("rate, size, and duration must be positive")
    entries: list[TraceEntry] = []
    scale = 1000.0 / rate_per_ms
    mu = float(np.log(mean_size_us)) - size_sigma**2 / 2
    expected = rate_per_ms * duration_us / 1000.0
    chunk = max(64, int(expected * 1.1) + 16)
    now = 0.0
    while now < duration_us:
        gaps = rng.standard_exponential(chunk) * scale
        times = now + np.cumsum(gaps)
        sizes = np.exp(rng.normal(mu, size_sigma, chunk))
        np.maximum(sizes, 0.1, out=sizes)
        for at_us, size_us in zip(times.tolist(), sizes.tolist()):
            if at_us >= duration_us:
                return entries
            entries.append(TraceEntry(at_us=at_us, size_us=size_us, kind=kind))
        now = float(times[-1])
    return entries


def save_trace_csv(entries: Iterable[TraceEntry], path: Union[str, Path]) -> None:
    """Write a trace as ``at_us,size_us,kind`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["at_us", "size_us", "kind"])
        for entry in entries:
            writer.writerow([entry.at_us, entry.size_us, entry.kind.value])


def load_trace_csv(path: Union[str, Path]) -> list[TraceEntry]:
    """Read a trace written by :func:`save_trace_csv`."""
    entries = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            entries.append(
                TraceEntry(
                    at_us=float(row["at_us"]),
                    size_us=float(row["size_us"]),
                    kind=RequestKind(row["kind"]),
                )
            )
    return entries
