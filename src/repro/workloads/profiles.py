"""Table 1 application profiles.

Each profile describes one benchmark as a per-round request mixture:
bursts of compute/graphics/DMA requests plus CPU think time.  Mixtures are
calibrated so that the *emergent* round time and mean request size land
near Table 1's measurements (``paper_round_us``, ``paper_request_us``);
``tests/workloads/test_table1_calibration.py`` enforces the tolerance and
EXPERIMENTS.md records the comparison.

Calibration constraint worth noting: Table 1's mean request size bounds
the number of requests a round can contain (sizes must sum to at most the
GPU-busy part of the round), which in turn bounds how much per-request
interception overhead a round can accumulate.  See EXPERIMENTS.md's
Figure 4 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.request import RequestKind


@dataclass(frozen=True)
class RequestBurst:
    """A group of requests issued back-to-back on one channel."""

    kind: RequestKind
    sizes: tuple[float, ...]
    blocking: bool = True
    #: CPU think time before each request in the burst (µs).
    pre_gap_us: float = 0.0
    #: Relative lognormal jitter applied to each size.
    jitter: float = 0.08


@dataclass(frozen=True)
class AppProfile:
    """One Table 1 application as a request mixture."""

    name: str
    area: str
    bursts: tuple[RequestBurst, ...]
    #: CPU think time per round (µs), before the first burst.
    think_us: float = 0.0
    #: Max in-flight requests per channel for non-blocking bursts.
    pipeline_depth: int = 2
    #: Whether in-flight requests are awaited at the end of each round.
    drain_each_round: bool = True
    #: Table 1 reference values (µs); graphics apps may carry two request
    #: sizes (compute, graphics) — stored separately for reporting.
    paper_round_us: float = 0.0
    paper_request_us: Optional[float] = None
    paper_request_split: Optional[tuple[float, float]] = None

    def kinds(self) -> tuple[RequestKind, ...]:
        seen: list[RequestKind] = []
        for burst in self.bursts:
            if burst.kind not in seen:
                seen.append(burst.kind)
        return tuple(seen)

    @property
    def request_count_per_round(self) -> int:
        return sum(len(burst.sizes) for burst in self.bursts)

    @property
    def gpu_us_per_round(self) -> float:
        return sum(sum(burst.sizes) for burst in self.bursts)


def _compute(sizes: tuple[float, ...], **kwargs) -> RequestBurst:
    return RequestBurst(RequestKind.COMPUTE, sizes, **kwargs)


def _graphics(sizes: tuple[float, ...], **kwargs) -> RequestBurst:
    return RequestBurst(RequestKind.GRAPHICS, sizes, **kwargs)


def _dma(sizes: tuple[float, ...], **kwargs) -> RequestBurst:
    kwargs.setdefault("blocking", False)
    return RequestBurst(RequestKind.DMA, sizes, **kwargs)


APP_PROFILES: dict[str, AppProfile] = {
    profile.name: profile
    for profile in [
        AppProfile(
            name="BinarySearch", area="Searching",
            bursts=(_compute((4.0, 110.0)),), think_us=45.0,
            paper_round_us=161.0, paper_request_us=57.0,
        ),
        AppProfile(
            name="BitonicSort", area="Sorting",
            bursts=(_compute((4.0, 4.0, 200.0, 400.0, 402.0)),), think_us=270.0,
            paper_round_us=1292.0, paper_request_us=202.0,
        ),
        AppProfile(
            name="DCT", area="Compression",
            bursts=(_compute((32.0, 100.0)),), think_us=60.0,
            paper_round_us=197.0, paper_request_us=66.0,
        ),
        AppProfile(
            name="EigenValue", area="Algebra",
            bursts=(_compute((12.0, 100.0)),), think_us=48.0,
            paper_round_us=163.0, paper_request_us=56.0,
        ),
        AppProfile(
            name="FastWalshTransform", area="Encryption",
            bursts=(_compute((38.0, 200.0)),), think_us=68.0,
            paper_round_us=310.0, paper_request_us=119.0,
        ),
        AppProfile(
            name="FFT", area="Signal Processing",
            bursts=(_compute((4.0, 8.0, 60.0, 120.0)),), think_us=70.0,
            paper_round_us=268.0, paper_request_us=48.0,
        ),
        AppProfile(
            name="FloydWarshall", area="Graph Analysis",
            bursts=(_compute((4.0,) * 17 + (278.0,) * 17),), think_us=820.0,
            paper_round_us=5631.0, paper_request_us=141.0,
        ),
        AppProfile(
            name="LUDecomposition", area="Algebra",
            bursts=(_compute((16.0, 200.0, 400.0, 616.0)),), think_us=250.0,
            paper_round_us=1490.0, paper_request_us=308.0,
        ),
        AppProfile(
            name="MatrixMulDouble", area="Algebra",
            bursts=(
                _dma((30.0, 30.0)),
                _compute((40.0,) * 8 + (1234.0,) * 8),
            ),
            think_us=2400.0,
            paper_round_us=12628.0, paper_request_us=637.0,
        ),
        AppProfile(
            name="MatrixMultiplication", area="Algebra",
            bursts=(
                _dma((30.0,)),
                _compute((36.0, 36.0, 36.0, 736.0, 736.0, 736.0, 736.0)),
            ),
            think_us=730.0,
            paper_round_us=3788.0, paper_request_us=436.0,
        ),
        AppProfile(
            name="MatrixTranspose", area="Algebra",
            bursts=(_compute((52.0, 300.0, 500.0)),), think_us=290.0,
            paper_round_us=1153.0, paper_request_us=284.0,
        ),
        AppProfile(
            name="PrefixSum", area="Data Processing",
            bursts=(_compute((10.0, 100.0)),), think_us=45.0,
            paper_round_us=157.0, paper_request_us=55.0,
        ),
        AppProfile(
            name="RadixSort", area="Sorting",
            bursts=(
                _dma((40.0,)),
                _compute((8.0,) * 17 + (424.0,) * 16),
            ),
            think_us=1150.0,
            paper_round_us=8082.0, paper_request_us=210.0,
        ),
        AppProfile(
            name="Reduction", area="Data Processing",
            bursts=(
                _dma((30.0,)),
                _compute((46.0, 300.0, 500.0)),
            ),
            think_us=290.0,
            paper_round_us=1147.0, paper_request_us=282.0,
        ),
        AppProfile(
            name="ScanLargeArrays", area="Data Processing",
            bursts=(_compute((24.0, 120.0)),), think_us=50.0,
            paper_round_us=197.0, paper_request_us=72.0,
        ),
        AppProfile(
            name="glxgears", area="Graphics",
            bursts=(_graphics((4.0, 70.0)),), think_us=2.0,
            paper_round_us=72.0, paper_request_us=37.0,
        ),
        AppProfile(
            name="oclParticles", area="Physics/Graphics",
            bursts=(
                _compute((12.0,) * 12, blocking=False),
                _graphics((302.0, 302.0), blocking=False),
            ),
            think_us=1900.0,
            pipeline_depth=4,
            drain_each_round=False,
            paper_round_us=2006.0, paper_request_split=(12.0, 302.0),
        ),
        AppProfile(
            name="simpleTexture3D", area="Texturing/Graphics",
            bursts=(
                # Tiny state-change requests interleave with the real work
                # (Figure 2: a large share of requests are short); per-kind
                # means still match Table 1's 108/171 split.
                _compute((4.0, 4.0, 4.0, 204.0, 204.0, 204.0)),
                _graphics((6.0,) * 5 + (446.0,) * 3, blocking=False),
            ),
            think_us=430.0,
            pipeline_depth=3,
            drain_each_round=True,
            paper_round_us=2472.0, paper_request_split=(108.0, 171.0),
        ),
    ]
}
