"""Execution of Table 1 application profiles."""

from __future__ import annotations

from typing import Optional

from repro.workloads.base import Workload
from repro.workloads.profiles import APP_PROFILES, AppProfile


class ProfiledApp(Workload):
    """Runs an :class:`~repro.workloads.profiles.AppProfile` in a loop.

    Each round: CPU think time, then the profile's bursts in order.
    Blocking requests wait for completion; non-blocking ones flow through a
    bounded per-channel pipeline (graphics frame queues).  Combined
    compute/graphics applications naturally end up with one channel per
    request kind, which is what trips Disengaged Fair Queueing's
    single-queue assumption (Section 5.3).
    """

    def __init__(self, profile: AppProfile, name: Optional[str] = None) -> None:
        super().__init__(name or profile.name)
        self.profile = profile

    def body(self):
        profile = self.profile
        channels = {kind: self.open_channel(kind) for kind in profile.kinds()}
        while True:
            start = self.sim.now
            if profile.think_us > 0:
                yield from self.cpu_work(self.jittered(profile.think_us))
            for burst in profile.bursts:
                channel = channels[burst.kind]
                for size in burst.sizes:
                    if burst.pre_gap_us > 0:
                        yield from self.cpu_work(self.jittered(burst.pre_gap_us))
                    drawn = self.jittered(size, burst.jitter)
                    if burst.blocking:
                        yield from self.submit(channel, drawn)
                    else:
                        yield from self.submit_pipelined(
                            channel, drawn, profile.pipeline_depth
                        )
            if profile.drain_each_round:
                yield from self.drain_pipeline()
            self.rounds.record(start, self.sim.now)


def make_app(name: str, instance: Optional[str] = None) -> ProfiledApp:
    """Construct a Table 1 application by name.

    ``instance`` overrides the workload label so the same benchmark can
    appear multiple times in one experiment.
    """
    try:
        profile = APP_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(APP_PROFILES))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
    return ProfiledApp(profile, name=instance)
