"""Counters and histograms for per-task / per-scheduler metrics.

A :class:`MetricsRegistry` owns named :class:`Counter` and
:class:`Histogram` instruments, each keyed by a label (conventionally the
task name, ``""`` for unlabeled totals).  Instruments are cheap plain
dictionaries — no locks, no wall clock — and :meth:`MetricsRegistry.snapshot`
renders everything into a deterministic, JSON-able nested dict that
experiment results and the parallel cell farm carry per cell.

Conventions used across the package (the metrics catalog lives in
docs/OBSERVABILITY.md):

* ``faults`` — register-page faults taken, by task
* ``submits`` — requests that reached the device, by task
* ``episodes`` / ``denials`` / ``token_passes`` — scheduler decisions
* ``overuse_charged_us`` — overuse charged past slice boundaries, by task
* ``request_latency_us`` — submit-to-retire latency histogram, by task
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

#: Default histogram bucket upper bounds (µs): roughly exponential from
#: sub-trap-cost to the documented maximum request run time.
DEFAULT_BUCKETS_US = (
    10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 50_000.0, 250_000.0, 1_000_000.0,
)

#: Catalog of every counter name the system bumps, with a one-line
#: meaning.  The registry-completeness test scans the source tree for
#: ``metrics.inc("...")`` / ``metrics.counter("...")`` sites and rejects
#: any name missing here, so the catalog cannot silently drift.
KNOWN_COUNTERS: dict[str, str] = {
    "faults": "register-page faults taken, by task",
    "submits": "requests that reached the device, by task",
    "releases": "requests released for dispatch by a per-request scheduler",
    "episodes": "DFQ engagement episodes run, by scheduler name",
    "denials": "intervals a task was denied device access",
    "token_passes": "timeslice token handoffs, by task",
    "overuse_charged_us": "overuse charged past slice boundaries, by task",
    "task_kills": "tasks killed by the kernel (runaway protection)",
    "faults_injected": "injector fault specs fired, by task",
    "fault_detections": "stuck drains the watchdog attributed, by task",
    "fault_recoveries": "detected faults resolved without a kill, by task",
    "fault_escalations": "watchdog escalations to a kill, by task",
    "watchdog_retries": "backed-off watchdog re-drains, by task",
    "windows_closed": "streaming metric windows closed, by monitor",
    "slo_violations": "SLO rules entering the violated state, by task",
    "slo_recoveries": "SLO rules clearing a violation, by task",
    "fleet_migrations": "tenant migrations between fleet devices, by task",
    "fleet_device_losses": "whole devices dropped from the fleet",
}

#: Catalog of every histogram name, same contract as KNOWN_COUNTERS.
KNOWN_HISTOGRAMS: dict[str, str] = {
    "request_latency_us": "submit-to-retire latency, by task",
}


class Counter:
    """A monotonically increasing value per label."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: dict[str, float] = {}

    def inc(self, label: str = "", amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._values[label] = self._values.get(label, 0.0) + amount

    def value(self, label: str = "") -> float:
        return self._values.get(label, 0.0)

    @property
    def total(self) -> float:
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        return {label: self._values[label] for label in sorted(self._values)}


class Histogram:
    """Bucketed distribution per label (cumulative-style buckets).

    ``buckets`` are inclusive upper bounds; an implicit overflow bucket
    catches everything larger.  Count, sum, min, and max are tracked
    exactly, so means are exact and percentiles bucket-accurate.
    """

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS_US,
        description: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.description = description
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts: dict[str, list[int]] = {}
        self._sum: dict[str, float] = {}
        self._count: dict[str, int] = {}
        self._min: dict[str, float] = {}
        self._max: dict[str, float] = {}

    def observe(self, label: str, value: float) -> None:
        counts = self._counts.get(label)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._counts[label] = counts
            self._sum[label] = 0.0
            self._count[label] = 0
            self._min[label] = value
            self._max[label] = value
        counts[bisect_left(self.buckets, value)] += 1
        self._sum[label] += value
        self._count[label] += 1
        if value < self._min[label]:
            self._min[label] = value
        elif value > self._max[label]:
            self._max[label] = value

    def count(self, label: str = "") -> int:
        return self._count.get(label, 0)

    def mean(self, label: str = "") -> Optional[float]:
        count = self._count.get(label, 0)
        if count == 0:
            return None
        return self._sum[label] / count

    def quantile(self, label: str, q: float) -> Optional[float]:
        """Bucket-resolution quantile: the upper bound of the bucket the
        q-th observation falls in (``inf`` for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts = self._counts.get(label)
        total = self._count.get(label, 0)
        if not counts or total == 0:
            return None
        rank = q * total
        seen = 0
        for position, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if position < len(self.buckets):
                    return self.buckets[position]
                return float("inf")
        return float("inf")

    def snapshot(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for label in sorted(self._counts):
            out[label] = {
                "count": self._count[label],
                "sum": self._sum[label],
                "min": self._min[label],
                "max": self._max[label],
                "buckets": list(self._counts[label]),
            }
        return out


class MetricsRegistry:
    """Named instruments, created on first use and snapshotted together."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = Counter(name, description)
            self._counters[name] = found
        return found

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS_US,
        description: str = "",
    ) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = Histogram(name, buckets, description)
            self._histograms[name] = found
        return found

    def inc(self, name: str, label: str = "", amount: float = 1.0) -> None:
        """Shorthand: bump counter ``name`` for ``label``."""
        self.counter(name).inc(label, amount)

    def observe(self, name: str, label: str, value: float) -> None:
        """Shorthand: record ``value`` into histogram ``name``."""
        self.histogram(name).observe(label, value)

    def snapshot(self) -> dict:
        """Deterministic nested dict of every instrument's state."""
        return {
            "counters": {
                name: self._counters[name].snapshot()
                for name in sorted(self._counters)
            },
            "histograms": {
                name: {
                    "buckets": list(self._histograms[name].buckets),
                    "labels": self._histograms[name].snapshot(),
                }
                for name in sorted(self._histograms)
            },
        }

    def task_view(self, task: str) -> dict:
        """Flat summary of every instrument's value for one task label.

        Counters contribute their value; histograms contribute
        ``{name}_count`` / ``{name}_mean`` / ``{name}_p95``.  Instruments
        with no data for the task are included as zeros so result shapes
        stay uniform across tasks.
        """
        view: dict[str, float] = {}
        for name in sorted(self._counters):
            view[name] = self._counters[name].value(task)
        for name in sorted(self._histograms):
            histogram = self._histograms[name]
            count = histogram.count(task)
            view[f"{name}_count"] = float(count)
            view[f"{name}_mean"] = histogram.mean(task) or 0.0
            view[f"{name}_p95"] = (
                histogram.quantile(task, 0.95) or 0.0 if count else 0.0
            )
        return view
