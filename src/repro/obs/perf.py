"""The ``repro perf`` subcommand family: record, history, compare, gate.

Cross-run performance telemetry for the evaluation harness::

    repro perf record figure6 --duration-ms 60 --workers 2 --repeats 2
    repro perf history --experiment figure6
    repro perf compare last -2
    repro perf gate --baseline BENCH_PR5.json --experiment figure4 \\
        --threshold 100 --metric-threshold 2

``record`` runs a named experiment exactly as ``repro <name>`` would —
the experiment's table is still printed, byte-identical — while a
:class:`~repro.obs.store.RunCollector` and a
:class:`~repro.obs.profile.PhaseProfiler` ride along, and appends the
resulting run record to the append-only store (default ``.repro/runs/``).
With ``--repeats N`` the run executes N times (each on a cold in-run
cache) and the record's ``wall_s`` is the **min over repeats** — the
standard noise-resistant estimator for "how fast can this machine do
it" — while ``wall_all_s`` keeps every sample.  Repeats double as a free
determinism check: the captured stdout must be identical across them.

``gate`` compares a record against a baseline file (a single record, or
a ``BENCH_*.json`` bundle keyed by experiment) and exits nonzero on
wall-time or metric regressions beyond the thresholds — wired into CI so
a PR that slows the evaluation or silently shifts a figure fails loudly.
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import io
import json
import sys
from argparse import Namespace
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.metrics.tables import format_table
from repro.obs.profile import PhaseProfiler, host_clock, profiling
from repro.obs.store import (
    GateMismatch,
    RunCollector,
    RunStore,
    build_record,
    collecting,
    compare_records,
    gate_records,
    is_metric_path,
)

#: Default gate threshold (percent) for wall-time growth.
DEFAULT_WALL_THRESHOLD_PCT = 20.0


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------

def record_run(
    experiment: str,
    duration_ms: Optional[float] = None,
    seed: int = 0,
    workers: int = 1,
    repeats: int = 1,
    cache_dir: Optional[Path] = None,
    no_cache: bool = False,
    note: Optional[str] = None,
    progress: bool = False,
) -> tuple[dict[str, Any], str]:
    """Run ``experiment`` with telemetry; returns (record, captured stdout).

    The record is *not* yet appended to a store (``run_id`` is None);
    callers decide where it goes.  Each repeat gets a fresh in-run cache
    so every wall sample is a cold computation.
    """
    # Imported lazily: the CLI table imports the experiment drivers, and
    # repro.cli itself delegates to this module.
    from repro.cli import EXPERIMENTS, _call_experiment
    from repro.experiments.parallel import CellTiming, ResultCache
    from repro.experiments.progress import CellProgress, progressing

    try:
        runner, _description = EXPERIMENTS[experiment]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {known}"
        ) from None

    repeats = max(1, int(repeats))
    walls: list[float] = []
    outputs: list[str] = []
    best: Optional[tuple[float, RunCollector, PhaseProfiler, int, int]] = None
    args = Namespace(seed=seed, duration_ms=duration_ms, workers=workers)

    for _repeat in range(repeats):
        cache = None if no_cache else ResultCache(cache_dir)
        collector = RunCollector(experiment)
        profiler = PhaseProfiler()
        timings: list[CellTiming] = []
        buffer = io.StringIO()
        renderer = (
            progressing(CellProgress())
            if progress
            else contextlib.nullcontext()
        )
        started = host_clock()
        with collecting(collector), profiling(profiler), renderer:
            with contextlib.redirect_stdout(buffer):
                _call_experiment(runner, args, cache, timings)
        wall = host_clock() - started
        walls.append(wall)
        outputs.append(buffer.getvalue())
        if best is None or wall < best[0]:
            hits = cache.hits if cache is not None else 0
            misses = cache.misses if cache is not None else 0
            best = (wall, collector, profiler, hits, misses)

    if any(output != outputs[0] for output in outputs[1:]):
        print(
            f"warning: {experiment} stdout differed across repeats — "
            "the run is nondeterministic",
            file=sys.stderr,
        )

    assert best is not None
    _wall, collector, profiler, hits, misses = best
    record = build_record(
        collector,
        profiler=profiler,
        wall_s=min(walls),
        wall_all_s=walls,
        params={
            "duration_ms": duration_ms,
            "seed": seed,
            "workers": workers,
            "repeats": repeats,
        },
        cache_hits=hits,
        cache_misses=misses,
        output_sha256=hashlib.sha256(outputs[0].encode("utf-8")).hexdigest(),
        note=note,
    )
    return record, outputs[0]


# ----------------------------------------------------------------------
# Record resolution
# ----------------------------------------------------------------------

def load_record_file(
    path: Path, experiment: Optional[str] = None
) -> dict[str, Any]:
    """A record from a JSON file: single record or a BENCH-style bundle."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a JSON object")
    records = data.get("records")
    if isinstance(records, dict):  # BENCH_*.json bundle
        if experiment is None:
            if len(records) == 1:
                return next(iter(records.values()))
            known = ", ".join(sorted(records))
            raise ValueError(
                f"{path} holds records for {known}; pass --experiment"
            )
        if experiment not in records:
            known = ", ".join(sorted(records))
            raise ValueError(
                f"{path} has no record for {experiment!r} (has: {known})"
            )
        return records[experiment]
    return data


def _resolve(
    store: RunStore, token: str, experiment: Optional[str]
) -> dict[str, Any]:
    """A record by file path, run id, ``last``, or integer index."""
    candidate = Path(token)
    if candidate.suffix == ".json" or candidate.is_file():
        return load_record_file(candidate, experiment)
    return store.resolve(token, experiment=experiment)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_record(args: argparse.Namespace) -> int:
    try:
        record, output = record_run(
            args.experiment,
            duration_ms=args.duration_ms,
            seed=args.seed,
            workers=args.workers,
            repeats=args.repeats,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            note=args.note,
            progress=args.progress,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    sys.stdout.write(output)
    store = RunStore(args.store_dir)
    record = store.append(record)
    if args.output is not None:
        Path(args.output).write_text(json.dumps(record, sort_keys=True) + "\n")
    reused = sum(
        1 for cell in record["cells"] if cell["source"] in ("cache", "dup")
    )
    print(
        f"recorded {record['run_id']}: wall {record['wall_s']:.2f}s "
        f"(min of {len(record['wall_all_s'])}), "
        f"{len(record['cells'])} cells ({reused} reused) -> {store.path}",
        file=sys.stderr,
    )
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    store = RunStore(args.store_dir)
    records = store.load(experiment=args.experiment)
    if not records:
        print(f"no run records in {store.path}", file=sys.stderr)
        return 1
    if args.limit is not None:
        records = records[-args.limit:]
    from repro.obs.store import flatten_record

    headers = ["run", "when (UTC)", "wall s", "cells", "reused", "dropped"]
    if args.metric:
        headers.append(args.metric)
    rows = []
    for record in records:
        stamp = record.get("unix_time")
        when = (
            datetime.fromtimestamp(stamp, timezone.utc).strftime(
                "%Y-%m-%d %H:%M:%S"
            )
            if isinstance(stamp, (int, float))
            else "-"
        )
        cells = record.get("cells") or []
        reused = sum(1 for cell in cells if cell.get("source") in ("cache", "dup"))
        row = [
            record.get("run_id") or "-",
            when,
            f"{record.get('wall_s', 0.0):.2f}",
            len(cells),
            reused,
            (record.get("trace") or {}).get("dropped", 0),
        ]
        if args.metric:
            value = flatten_record(record).get(args.metric)
            row.append("-" if value is None else f"{value:g}")
        rows.append(row)
    title = "perf history"
    if args.experiment:
        title += f" — {args.experiment}"
    print(format_table(headers, rows, title=title))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    store = RunStore(args.store_dir)
    try:
        left = _resolve(store, args.left, args.experiment)
        right = _resolve(store, args.right, args.experiment)
    except (LookupError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    deltas = compare_records(left, right)
    left_name = left.get("run_id") or args.left
    right_name = right.get("run_id") or args.right
    print(f"compare {left_name} -> {right_name}")
    if not deltas:
        print("records are numerically identical")
        return 0
    metric_deltas = {
        path: pair for path, pair in deltas.items() if is_metric_path(path)
    }
    host_deltas = {
        path: pair
        for path, pair in deltas.items()
        if path not in metric_deltas
    }
    if host_deltas:
        print("host-side (wall, phases, cache):")
        for path, (a, b) in host_deltas.items():
            print(f"  {path:48s} {_fmt(a):>12s} -> {_fmt(b):>12s}")
    if metric_deltas:
        print("simulation metrics (cells.*):")
        for path, (a, b) in metric_deltas.items():
            print(f"  {path:48s} {_fmt(a):>12s} -> {_fmt(b):>12s}")
    else:
        print("simulation metrics (cells.*): identical")
    # Host-side noise always differs; only metric drift is a finding.
    return 1 if metric_deltas else 0


def _fmt(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:g}"


def cmd_gate(args: argparse.Namespace) -> int:
    store = RunStore(args.store_dir)
    try:
        baseline = load_record_file(args.baseline, args.experiment)
        experiment = args.experiment or baseline.get("experiment")
        current = _resolve(store, args.run, experiment)
    except (LookupError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    try:
        regressions = gate_records(
            current,
            baseline,
            wall_threshold_pct=args.threshold,
            metric_threshold_pct=args.metric_threshold,
        )
    except GateMismatch as error:
        print(f"gate: records not comparable: {error}", file=sys.stderr)
        return 2
    current_name = current.get("run_id") or args.run
    if regressions:
        print(
            f"gate FAILED: {current_name} vs {args.baseline} "
            f"({len(regressions)} regression(s)):"
        )
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    metric_threshold = (
        args.metric_threshold
        if args.metric_threshold is not None
        else args.threshold
    )
    print(
        f"gate ok: {current_name} within +{args.threshold:g}% wall / "
        f"±{metric_threshold:g}% metrics of {args.baseline} "
        f"(wall {current.get('wall_s', 0.0):.2f}s vs "
        f"{baseline.get('wall_s', 0.0):.2f}s)"
    )
    return 0


# ----------------------------------------------------------------------
# Parser / entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="Cross-run performance telemetry: record experiment "
        "runs, tabulate history, diff records, gate regressions.",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="run-record store directory (default: .repro/runs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run an experiment and append its run record"
    )
    record.add_argument("experiment", help="experiment name (see 'repro list')")
    record.add_argument("--duration-ms", type=float, default=None)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--workers", type=int, default=1)
    record.add_argument(
        "--repeats", type=int, default=1,
        help="run N times; wall_s is the min over repeats (default: 1)",
    )
    record.add_argument(
        "--cache-dir", type=Path, default=None,
        help="persist cell results under this directory (per repeat the "
        "in-run cache starts cold regardless)",
    )
    record.add_argument("--no-cache", action="store_true")
    record.add_argument("--note", default=None, help="free-form record note")
    record.add_argument(
        "--progress", action="store_true",
        help="live per-cell progress on stderr",
    )
    record.add_argument(
        "-o", "--output", default=None,
        help="also write the single record as JSON to this path",
    )

    history = sub.add_parser(
        "history", help="tabulate stored run records"
    )
    history.add_argument("--experiment", default=None)
    history.add_argument(
        "--metric", default=None,
        help="dotted record path to tabulate "
        "(e.g. cells.0.workloads.t0.metrics.submits)",
    )
    history.add_argument("--limit", type=int, default=None)

    compare = sub.add_parser(
        "compare", help="diff two run records (per-metric deltas)"
    )
    compare.add_argument("left", help="run id, 'last', index, or JSON file")
    compare.add_argument("right", help="run id, 'last', index, or JSON file")
    compare.add_argument("--experiment", default=None)

    gate = sub.add_parser(
        "gate", help="exit nonzero on regressions vs a baseline record"
    )
    gate.add_argument(
        "--baseline", required=True, type=Path,
        help="baseline record JSON (single record or BENCH_*.json bundle)",
    )
    gate.add_argument(
        "--run", default="last",
        help="record to gate: run id, 'last', index, or JSON file "
        "(default: last)",
    )
    gate.add_argument("--experiment", default=None)
    gate.add_argument(
        "--threshold", type=float, default=DEFAULT_WALL_THRESHOLD_PCT,
        help="max wall-time growth percent (default: "
        f"{DEFAULT_WALL_THRESHOLD_PCT:g})",
    )
    gate.add_argument(
        "--metric-threshold", type=float, default=None,
        help="max metric drift percent, either direction "
        "(default: same as --threshold)",
    )

    return parser


_COMMANDS = {
    "record": cmd_record,
    "history": cmd_history,
    "compare": cmd_compare,
    "gate": cmd_gate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
