"""Per-task engaged vs. disengaged time accounting.

The interception layer feeds an :class:`EngagementLedger` every time a
channel's register page flips between protected (engaged) and direct
(disengaged) access.  The ledger integrates channel-time: a task with two
channels engaged for 50µs accrues 100µs of engaged channel-time.  This is
the quantity behind the paper's "fraction of time spent engaged" overhead
claim, reported per task by ``repro trace summary`` and the metrics
snapshot.

Pure bookkeeping — no simulator, gpu, or kernel imports.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _ChannelState:
    task: str
    engaged: bool
    since: float
    engaged_us: float = 0.0
    disengaged_us: float = 0.0

    def settle(self, now: float) -> None:
        elapsed = now - self.since
        if elapsed > 0:
            if self.engaged:
                self.engaged_us += elapsed
            else:
                self.disengaged_us += elapsed
        self.since = now


class EngagementLedger:
    """Integrates per-channel engaged/disengaged time, grouped by task."""

    def __init__(self) -> None:
        self._channels: dict[int, _ChannelState] = {}
        #: Channel-time accrued by channels already untracked (task exit).
        self._closed: dict[str, dict[str, float]] = {}

    def track(self, channel_id: int, task: str, engaged: bool, now: float) -> None:
        """Start accounting for a channel (at creation time)."""
        self._channels[channel_id] = _ChannelState(task, engaged, now)

    def set_state(self, channel_id: int, engaged: bool, now: float) -> None:
        """Record a protection flip; no-op for unknown channels or no-ops."""
        state = self._channels.get(channel_id)
        if state is None or state.engaged == engaged:
            return
        state.settle(now)
        state.engaged = engaged

    def untrack(self, channel_id: int, now: float) -> None:
        """Stop accounting (task exit); accrued time is preserved."""
        state = self._channels.pop(channel_id, None)
        if state is None:
            return
        state.settle(now)
        closed = self._closed.setdefault(
            state.task, {"engaged_us": 0.0, "disengaged_us": 0.0}
        )
        closed["engaged_us"] += state.engaged_us
        closed["disengaged_us"] += state.disengaged_us

    def snapshot(self, now: float) -> dict[str, dict[str, float]]:
        """Per-task ``{engaged_us, disengaged_us}`` channel-time up to ``now``.

        Live channels are settled into the result without mutating the
        ledger, so snapshots are safe mid-run.  Sorted by task name.
        """
        totals: dict[str, dict[str, float]] = {}
        for task in sorted(self._closed):
            closed = self._closed[task]
            totals[task] = {
                "engaged_us": closed["engaged_us"],
                "disengaged_us": closed["disengaged_us"],
            }
        for channel_id in sorted(self._channels):
            state = self._channels[channel_id]
            entry = totals.setdefault(
                state.task, {"engaged_us": 0.0, "disengaged_us": 0.0}
            )
            entry["engaged_us"] += state.engaged_us
            entry["disengaged_us"] += state.disengaged_us
            elapsed = now - state.since
            if elapsed > 0:
                key = "engaged_us" if state.engaged else "disengaged_us"
                entry[key] += elapsed
        return dict(sorted(totals.items()))
