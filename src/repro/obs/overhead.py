"""Reconstruct the engagement-overhead breakdown from a trace alone.

The disengaged schedulers keep a live ``time_breakdown`` dict while they
run; this module derives the same four quantities purely from trace
events, proving the trace carries the paper's overhead story (Table in
§5.2: time lost to drains, sampling, and other engagement work versus
disengaged free-running):

* ``engagement_us`` — episode time, ``barrier_begin`` → ``freerun_start``
  (each pair is one engagement episode; a trailing unfinished episode is
  excluded, exactly as the live accounting excludes it);
* ``sampling_us`` — first ``sample_window_begin`` → last
  ``sample_window_end`` within an episode (windows run back-to-back,
  including their post-window drains);
* ``drain_wait_us`` — summed ``drain_stall.waited_us`` for stalls
  *outside* sampling windows (the barrier drain; in-window drains are
  already part of ``sampling_us``);
* ``freerun_us`` — each ``freerun_start``'s scheduled length, counted
  only if the free-run completed within the run (``end_us``).

The equivalence is tested against ``scheduler.time_breakdown`` in
``tests/obs/test_overhead.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import events
from repro.sim.trace import TraceRecorder

BREAKDOWN_KEYS = ("drain_wait_us", "sampling_us", "engagement_us", "freerun_us")


def overhead_breakdown(
    trace: TraceRecorder, end_us: Optional[float] = None
) -> dict[str, float]:
    """Derive the scheduler's time breakdown from trace events.

    ``end_us`` is the run's end time (e.g. ``sim.now`` after the run or
    the experiment duration); without it the last record's time is used,
    which may undercount a trailing free-run on a quiet tail.
    """
    if end_us is None:
        end_us = trace.span_us[1]

    breakdown = {key: 0.0 for key in BREAKDOWN_KEYS}

    # Episode spans: pair each freerun_start with the latest barrier_begin.
    barrier_time: Optional[float] = None
    window_begin: Optional[float] = None
    stalls: list[tuple[float, float]] = []
    windows: list[tuple[float, float]] = []

    wanted = (
        events.BARRIER_BEGIN,
        events.FREERUN_START,
        events.SAMPLE_WINDOW_BEGIN,
        events.SAMPLE_WINDOW_END,
        events.DRAIN_STALL,
    )
    for record in trace.records(kinds=wanted):
        if record.kind == events.BARRIER_BEGIN:
            barrier_time = record.time
        elif record.kind == events.FREERUN_START:
            if barrier_time is not None:
                breakdown["engagement_us"] += record.time - barrier_time
                barrier_time = None
            freerun_us = float(record.payload.get("freerun_us", 0.0))
            if record.time + freerun_us <= end_us:
                breakdown["freerun_us"] += freerun_us
        elif record.kind == events.SAMPLE_WINDOW_BEGIN:
            window_begin = record.time
        elif record.kind == events.SAMPLE_WINDOW_END:
            if window_begin is not None:
                windows.append((window_begin, record.time))
                window_begin = None
        elif record.kind == events.DRAIN_STALL:
            stalls.append((record.time, float(record.payload.get("waited_us", 0.0))))

    # Windows within an episode run back-to-back (each span includes its
    # post-window drain), so summing spans equals the live accounting's
    # first-begin → last-end per episode.
    breakdown["sampling_us"] = sum(end - begin for begin, end in windows)

    # Barrier-drain stalls: those not inside a sampling window.  The test
    # is half-open (begin, end]: a barrier drain returns at the instant the
    # first window opens, while an in-window drain's stall lands exactly on
    # its window's end.
    for time, waited_us in stalls:
        in_window = any(begin < time <= end for begin, end in windows)
        if not in_window:
            breakdown["drain_wait_us"] += waited_us

    return breakdown


def overhead_report(
    breakdown: dict[str, float], end_us: Optional[float] = None
) -> list[str]:
    """Human-readable breakdown lines for the CLI summary."""
    accounted = sum(breakdown.get(key, 0.0) for key in
                    ("engagement_us", "freerun_us"))
    engagement = breakdown.get("engagement_us", 0.0)
    sampling = breakdown.get("sampling_us", 0.0)
    drain = breakdown.get("drain_wait_us", 0.0)
    other = max(engagement - sampling - drain, 0.0)
    lines = []

    def pct(part: float, whole: float) -> str:
        return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"

    total = end_us if end_us else accounted
    lines.append(
        f"  engagement        {engagement / 1000.0:10.2f} ms  {pct(engagement, total)}"
    )
    lines.append(
        f"    drain wait      {drain / 1000.0:10.2f} ms  {pct(drain, total)}"
    )
    lines.append(
        f"    sampling        {sampling / 1000.0:10.2f} ms  {pct(sampling, total)}"
    )
    lines.append(
        f"    other (flips)   {other / 1000.0:10.2f} ms  {pct(other, total)}"
    )
    lines.append(
        f"  free-run          {breakdown.get('freerun_us', 0.0) / 1000.0:10.2f} ms  "
        f"{pct(breakdown.get('freerun_us', 0.0), total)}"
    )
    return lines
