"""The ``repro trace`` subcommand family: record, inspect, export, diff.

Everything here consumes either a JSONL trace file produced by ``record``
(or :func:`repro.obs.export.save_trace`) or records a fresh trace by
running a small simulation inline.  Output is deterministic: same seed,
same trace, same bytes.

    repro trace kinds
    repro trace record --scheduler dfq --apps glxgears,BitonicSort -o t.jsonl
    repro trace summary t.jsonl
    repro trace summary --scheduler dfq --apps glxgears --duration-ms 200
    repro trace export t.jsonl --format chrome -o t.chrome.json
    repro trace filter t.jsonl --kind fault --task glxgears
    repro trace diff left.jsonl right.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence, TextIO

from repro.obs import events
from repro.obs.export import (
    load_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.overhead import overhead_report
from repro.obs.summary import diff_counts, diff_tasks, summarize
from repro.sim.trace import DEFAULT_TRACE_CAP, TraceRecorder

#: Default virtual duration for inline recordings (µs).
DEFAULT_RECORD_DURATION_US = 400_000.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Record, summarize, filter, export, and diff repro traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kinds", help="list the registered trace event kinds")

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scheduler", default="dfq",
            help="scheduler to run (default: dfq)",
        )
        p.add_argument(
            "--apps", default="glxgears,BitonicSort",
            help="comma-separated Table 1 app names (default: "
            "glxgears,BitonicSort)",
        )
        p.add_argument(
            "--duration-ms", type=float, default=None,
            help="virtual duration in milliseconds (default: 400)",
        )
        p.add_argument("--seed", type=int, default=0, help="root RNG seed")
        p.add_argument(
            "--max-records", type=int, default=DEFAULT_TRACE_CAP,
            help="trace ring-buffer capacity (oldest records drop beyond it)",
        )
        p.add_argument(
            "--fault-plan", default=None, metavar="FILE",
            help="JSON fault plan to install for the run (repro.faults)",
        )

    record = sub.add_parser(
        "record", help="run a simulation and write its trace as JSONL"
    )
    add_run_options(record)
    record.add_argument(
        "-o", "--output", default=None,
        help="output path (default: stdout)",
    )

    summary = sub.add_parser(
        "summary",
        help="per-task activity and the engagement-overhead breakdown",
    )
    summary.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace file; omit to record one inline",
    )
    summary.add_argument(
        "--json", action="store_true",
        help="machine-readable JSON instead of the table rendering "
        "(same summary model; 'repro why' consumes this)",
    )
    add_run_options(summary)

    filter_cmd = sub.add_parser(
        "filter", help="select records from a JSONL trace (JSONL out)"
    )
    filter_cmd.add_argument("trace", help="JSONL trace file")
    filter_cmd.add_argument(
        "--kind", action="append", default=None,
        help="keep only this kind (repeatable)",
    )
    filter_cmd.add_argument(
        "--task", action="append", default=None,
        help="keep only records whose payload names this task (repeatable)",
    )
    filter_cmd.add_argument(
        "--source", action="append", default=None,
        help="keep only this source (repeatable)",
    )
    filter_cmd.add_argument(
        "--device", action="append", type=int, default=None,
        help="keep only records on this fleet device (repeatable; "
        "records without a device tag count as device 0)",
    )
    filter_cmd.add_argument(
        "--start-us", type=float, default=None, help="keep records at/after"
    )
    filter_cmd.add_argument(
        "--end-us", type=float, default=None, help="keep records at/before"
    )
    filter_cmd.add_argument("-o", "--output", default=None)

    export = sub.add_parser(
        "export", help="convert a JSONL trace (chrome for Perfetto, jsonl)"
    )
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="output format (default: chrome)",
    )
    export.add_argument(
        "--strict", action="store_true",
        help="exit nonzero when the trace lost records to ring-buffer "
        "eviction (the export is still written)",
    )
    export.add_argument(
        "--spans", action="store_true",
        help="chrome format: also emit reconstructed lifecycle spans as "
        "Perfetto async ('b'/'e') events (repro.obs.spans)",
    )
    export.add_argument("-o", "--output", default=None)

    diff = sub.add_parser(
        "diff", help="compare two traces (kind counts and per-task activity)"
    )
    diff.add_argument("left", help="JSONL trace file")
    diff.add_argument("right", help="JSONL trace file")

    return parser


# ----------------------------------------------------------------------
# Inline recording
# ----------------------------------------------------------------------

def record_trace(
    scheduler: str,
    apps: Sequence[str],
    duration_us: float,
    seed: int,
    max_records: Optional[int],
    fault_plan=None,
) -> tuple[TraceRecorder, float]:
    """Run a small simulation with tracing on; returns (trace, end time)."""
    # Imported here so trace-file analysis never loads the simulator.
    from repro.experiments.runner import build_env, run_workloads
    from repro.workloads.apps import make_app

    trace = TraceRecorder(max_records=max_records)
    env = build_env(scheduler, seed=seed, trace=trace, fault_plan=fault_plan)
    counts: dict[str, int] = {}
    workloads = []
    for name in apps:
        seen = counts.get(name, 0)
        counts[name] = seen + 1
        # Repeats of an app get distinct task labels, matching the
        # monitor's convention (glxgears, then glxgears.2, ...); the
        # first keeps the plain name so unique-app traces are unchanged.
        instance = None if seen == 0 else f"{name}.{seen + 1}"
        workloads.append(make_app(name, instance=instance))
    run_workloads(env, workloads, duration_us=duration_us)
    return trace, env.sim.now


def _parse_apps(spec: str) -> list[str]:
    return [name.strip() for name in spec.split(",") if name.strip()]


def _obtain_trace(args: argparse.Namespace) -> tuple[TraceRecorder, Optional[float]]:
    """A trace from the file argument, or from an inline recording."""
    if getattr(args, "trace", None) is not None:
        return load_trace(args.trace), None
    duration_us = (
        args.duration_ms * 1000.0
        if args.duration_ms is not None
        else DEFAULT_RECORD_DURATION_US
    )
    fault_plan = None
    if getattr(args, "fault_plan", None) is not None:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
    return record_trace(
        args.scheduler, _parse_apps(args.apps), duration_us, args.seed,
        args.max_records, fault_plan,
    )


def _open_output(path: Optional[str]) -> tuple[TextIO, bool]:
    if path is None or path == "-":
        return sys.stdout, False
    return open(path, "w", encoding="utf-8"), True


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_kinds(_args: argparse.Namespace) -> int:
    for kind in events.registered_kinds():
        spec = events.EVENT_KINDS[kind]
        payload = ", ".join(spec.payload) if spec.payload else "-"
        print(f"{kind:20s} {spec.layer:10s} {spec.description}")
        print(f"{'':20s} {'':10s} payload: {payload}")
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    trace, _end = _obtain_trace(args)
    stream, close = _open_output(args.output)
    try:
        count = write_jsonl(trace, stream)
    finally:
        if close:
            stream.close()
    if close:
        print(
            f"wrote {count} records ({trace.dropped} dropped) to {args.output}",
            file=sys.stderr,
        )
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    trace, end_us = _obtain_trace(args)
    summary = summarize(trace, end_us=end_us)
    if args.json:
        import json

        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    first, last = summary.span_us
    print(
        f"trace: {summary.records} records"
        f" ({summary.dropped} dropped),"
        f" span {first / 1000.0:.2f}..{last / 1000.0:.2f} ms"
    )
    if summary.dropped:
        print(
            f"WARNING: ring buffer evicted {summary.dropped} records — "
            "this trace is PARTIAL; per-task counts and the overhead "
            "breakdown undercount early activity (raise --max-records "
            "to capture everything)"
        )
    print()
    print("per-task activity:")
    header = (
        f"  {'task':24s} {'submits':>8s} {'completes':>9s} {'faults':>7s} "
        f"{'denials':>7s} {'engaged ms':>11s} {'disengaged ms':>13s} "
        f"{'mean lat us':>11s}"
    )
    print(header)
    for name, task in summary.tasks.items():
        latency = task.mean_latency_us
        latency_text = f"{latency:11.1f}" if latency is not None else f"{'-':>11s}"
        flags = ""
        if task.killed:
            flags = "  [killed]"
        elif task.exited:
            flags = "  [exited]"
        print(
            f"  {name:24s} {task.submits:8d} {task.completes:9d} "
            f"{task.faults:7d} {task.denials:7d} "
            f"{task.engaged_us / 1000.0:11.2f} "
            f"{task.disengaged_us / 1000.0:13.2f} {latency_text}{flags}"
        )
    print()
    print("engagement-overhead breakdown (from trace events alone):")
    total = end_us if end_us is not None else last
    for line in overhead_report(summary.breakdown, total):
        print(line)
    if summary.fault_timeline:
        print()
        print("fault/recovery timeline (repro.faults injection + watchdog):")
        for incident in summary.fault_timeline:
            task = incident.task or "-"
            print(
                f"  {incident.time_us / 1000.0:10.2f} ms  "
                f"{incident.kind:16s} {task:16s} {incident.detail}"
            )
    print()
    print("records by kind:")
    for kind, count in sorted(summary.kind_counts.items()):
        print(f"  {kind:24s} {count:8d}")
    return 0


def cmd_filter(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    kinds = set(args.kind) if args.kind else None
    tasks = set(args.task) if args.task else None
    sources = set(args.source) if args.source else None
    devices = set(args.device) if args.device else None
    selected = TraceRecorder()
    for record in trace.records(start_us=args.start_us, end_us=args.end_us):
        if kinds is not None and record.kind not in kinds:
            continue
        if sources is not None and record.source not in sources:
            continue
        if tasks is not None and record.payload.get("task") not in tasks:
            continue
        if devices is not None and record.payload.get("device", 0) not in devices:
            continue
        selected.append(record)
    stream, close = _open_output(args.output)
    try:
        count = write_jsonl(selected, stream)
    finally:
        if close:
            stream.close()
    if close:
        print(f"kept {count} of {len(trace)} records", file=sys.stderr)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    stream, close = _open_output(args.output)
    try:
        if args.format == "chrome":
            count = write_chrome_trace(trace, stream, spans=args.spans)
        else:
            count = write_jsonl(trace, stream)
    finally:
        if close:
            stream.close()
    if close:
        print(f"wrote {count} events to {args.output}", file=sys.stderr)
    if args.strict and trace.dropped:
        print(
            f"strict: trace is PARTIAL ({trace.dropped} records evicted "
            "by the ring buffer before recording finished)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    left = load_trace(args.left)
    right = load_trace(args.right)
    count_deltas = diff_counts(left, right)
    task_deltas = diff_tasks(summarize(left), summarize(right))
    if not count_deltas and not task_deltas:
        print("traces are equivalent (kind counts and per-task activity)")
        return 0
    if count_deltas:
        print("records by kind:")
        for kind, (left_count, right_count) in count_deltas.items():
            print(f"  {kind:24s} {left_count:8d} -> {right_count:8d}")
    if task_deltas:
        print("per-task activity:")
        for task, deltas in task_deltas.items():
            for name, (left_value, right_value) in sorted(deltas.items()):
                print(
                    f"  {task:24s} {name:16s} "
                    f"{left_value:12.1f} -> {right_value:12.1f}"
                )
    return 1


_COMMANDS = {
    "kinds": cmd_kinds,
    "record": cmd_record,
    "summary": cmd_summary,
    "filter": cmd_filter,
    "export": cmd_export,
    "diff": cmd_diff,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
