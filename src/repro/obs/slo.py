"""Declarative SLO monitors evaluated at window close.

An :class:`SloRule` names one of four detector kinds over the streaming
windows of :mod:`repro.obs.windows`:

``starvation``
    A tenant showed demand (submits, faults, or denials) but completed
    nothing and was attributed at most ``threshold`` µs of device share.
``fairness_floor``
    The window's Jain index over tenant shares fell below ``threshold``
    (window-level; subject is ``""``).
``tail_latency``
    A tenant's fixed-bin latency ``quantile`` exceeded ``threshold`` µs.
``overuse_budget``
    A tenant was charged more than ``threshold`` µs of overuse in the
    window, or exceeded ``max_escalations`` watchdog escalations — the
    DrainWatchdog ladder made observable as an alert.

Rules carry hysteresis: a subject must violate for ``for_windows``
consecutive windows before a violation fires, and a single clean window
recovers it.  The :class:`SloEngine` is pure bookkeeping over
:class:`~repro.obs.windows.WindowSnapshot` values — no simulator
imports — so rules evaluate identically live or in replay.

Rules serialize to/from plain dicts (``repro monitor --slo rules.json``);
the schema is documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.obs.windows import WindowSnapshot

#: The recognized detector kinds.
RULE_KINDS = ("starvation", "fairness_floor", "tail_latency", "overuse_budget")


@dataclass(frozen=True)
class SloRule:
    """One declarative service-level objective."""

    name: str
    kind: str
    threshold: float
    #: Consecutive violating windows required before the rule fires.
    for_windows: int = 1
    #: Latency quantile checked by ``tail_latency`` rules.
    quantile: float = 0.99
    #: Escalation budget for ``overuse_budget`` rules (None: only the
    #: overuse-µs threshold applies).
    max_escalations: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO rule needs a name")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {RULE_KINDS}"
            )
        if self.for_windows < 1:
            raise ValueError("for_windows must be >= 1")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "for_windows": self.for_windows,
        }
        if self.kind == "tail_latency":
            out["quantile"] = self.quantile
        if self.max_escalations is not None:
            out["max_escalations"] = self.max_escalations
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SloRule":
        known = {"name", "kind", "threshold", "for_windows", "quantile",
                 "max_escalations"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown SLO rule fields: {sorted(extra)}")
        kwargs = {key: data[key] for key in sorted(known) if key in data}
        return cls(**kwargs)


def load_rules(path: Path) -> list[SloRule]:
    """Read rules from a JSON file: a list, or ``{"rules": [...]}``."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError("SLO file must hold a list of rules")
    return [SloRule.from_dict(entry) for entry in data]


@dataclass(frozen=True)
class SloEvent:
    """One state transition: a rule fired or recovered for a subject."""

    event: str  # "violation" | "recovered"
    rule: str
    slo_kind: str
    #: Tenant the rule fired for; "" for window-level rules.
    task: str
    window: int
    end_us: float
    value: float
    threshold: float
    #: Consecutive violating windows at transition time.
    violated_windows: int

    def to_dict(self) -> dict:
        return {
            "event": self.event,
            "rule": self.rule,
            "slo_kind": self.slo_kind,
            "task": self.task,
            "window": self.window,
            "end_us": self.end_us,
            "value": self.value,
            "threshold": self.threshold,
            "violated_windows": self.violated_windows,
        }


@dataclass
class _SubjectState:
    streak: int = 0
    active: bool = False
    last_value: float = 0.0


class SloEngine:
    """Evaluates a rule set against each closed window, with hysteresis."""

    def __init__(self, rules: Iterable[SloRule]) -> None:
        self.rules = tuple(rules)
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError("SLO rule names must be unique")
        self._state: dict[tuple[str, str], _SubjectState] = {}
        self.violations = 0
        self.recoveries = 0

    @property
    def active_violations(self) -> list[tuple[str, str]]:
        """(rule, task) pairs currently in the violated state, sorted."""
        return sorted(
            key for key, state in self._state.items() if state.active
        )

    def observe(self, snapshot: WindowSnapshot) -> list[SloEvent]:
        """Evaluate every rule against one closed window; returns the
        state transitions (violations fired / recoveries) in rule order."""
        events: list[SloEvent] = []
        for rule in self.rules:
            offenders = self._evaluate(rule, snapshot)
            seen = set(offenders)
            for task in sorted(offenders):
                state = self._state.setdefault(
                    (rule.name, task), _SubjectState()
                )
                state.streak += 1
                state.last_value = offenders[task]
                if state.streak >= rule.for_windows and not state.active:
                    state.active = True
                    self.violations += 1
                    events.append(SloEvent(
                        "violation", rule.name, rule.kind, task,
                        snapshot.index, snapshot.end_us,
                        offenders[task], rule.threshold, state.streak,
                    ))
            for (rule_name, task), state in self._state.items():
                if rule_name != rule.name or task in seen:
                    continue
                if state.active:
                    state.active = False
                    self.recoveries += 1
                    events.append(SloEvent(
                        "recovered", rule.name, rule.kind, task,
                        snapshot.index, snapshot.end_us,
                        state.last_value, rule.threshold, state.streak,
                    ))
                state.streak = 0
        return events

    # -- detectors -----------------------------------------------------
    def _evaluate(
        self, rule: SloRule, snapshot: WindowSnapshot
    ) -> dict[str, float]:
        """Subjects violating ``rule`` in this window, with the measured
        value; window-level rules use subject ``""``."""
        if rule.kind == "fairness_floor":
            if not math.isnan(snapshot.jain) and snapshot.jain < rule.threshold:
                return {"": snapshot.jain}
            return {}
        offenders: dict[str, float] = {}
        for task, stats in snapshot.tenants.items():
            if rule.kind == "starvation":
                demand = stats.submits + stats.faults + stats.denials
                if (demand > 0 and stats.completions == 0
                        and stats.share_usage_us <= rule.threshold):
                    offenders[task] = stats.share_usage_us
            elif rule.kind == "tail_latency":
                latency = stats.latency
                if latency is None or not latency.count:
                    continue
                value = latency.quantile(rule.quantile)
                if value is not None and value > rule.threshold:
                    offenders[task] = value
            elif rule.kind == "overuse_budget":
                if stats.overuse_us > rule.threshold:
                    offenders[task] = stats.overuse_us
                elif (rule.max_escalations is not None
                        and stats.escalations > rule.max_escalations):
                    offenders[task] = float(stats.escalations)
        return offenders
