"""Causal request-lifecycle spans reconstructed from the trace stream.

The trace (:mod:`repro.sim.trace`) is a flat event stream; this module
rebuilds *causality* from it: every request becomes a lifecycle span —
submit → scheduler wait → device queue → execute → complete/abort — with
an **exact** decomposition of its latency into labeled components.  The
reconstruction is a pure function of the record stream, so it runs in
two interchangeable modes:

* as a **live sink** registered with
  :meth:`~repro.sim.trace.TraceRecorder.add_sink`, which sees the
  complete stream before ring-buffer eviction (like the PR-8 windows,
  the result is independent of ``max_records``); or
* as **replay** over a buffered or JSONL-imported trace
  (:func:`build_spans`), in which case the result covers whatever the
  buffer retained.

Both modes feed the identical state machine, so a live-sink build and a
replay over the exported JSONL of the same run serialize byte-identically.

Decomposition components (integer microseconds, summing exactly to the
span duration):

``sched_wait``
    Scheduler queue-wait: the fault handler held the task blocked on the
    scheduler's verdict (disengaged denial wait, fair-queue token wait).
``handler``
    Interception handler overhead outside the blocked wait: trap,
    fault-handling CPU, single-step, the submit path itself.
``queue``
    Device queue contention: the request sat enqueued while the engine
    served other work (including re-queue time after a preemption).
``exec``
    Engine execution (as observed through completion publication, so a
    stalled reference counter inflates it exactly as software sees it).
``stall``
    Fault-recovery stall: wait time overlapping a watchdog
    detect→recover/escalate window on the span's device.
``migration``
    Fleet migration cost: wait time overlapping the task's own
    ``fleet.migrate_begin``→``end`` window.

Spans carry the fleet ``device`` tag (0 when the trace has none) and
survive migrations as *linked* cross-device segments: each span records
the task's migration epoch, and the span set lists the
:class:`MigrationLink` joining epoch *n* on the source device to epoch
*n+1* on the target.

The module also owns the **span-pair registry**: which event kinds open
a span and which kinds terminate it.  neonlint rule NEON406 checks
span-boundary emit sites against this registry, the same way NEON401/402
check event kinds against :mod:`repro.obs.events`.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Union

from repro.obs import events
from repro.sim.trace import TraceRecord, TraceRecorder

SPANS_FORMAT = "repro-spans"
SPANS_VERSION = 1

#: Decomposition component labels, in display order.
COMPONENTS = ("sched_wait", "handler", "queue", "exec", "stall", "migration")

#: Human description per component (the ``repro why`` vocabulary).
COMPONENT_LABELS = {
    "sched_wait": "scheduler-induced delay (blocked on token / engagement)",
    "handler": "interception handler overhead (trap, single-step, submit)",
    "queue": "scheduler queue-wait (device busy with other tenants' work)",
    "exec": "engine execution",
    "stall": "fault-recovery stall (watchdog retry/quarantine window)",
    "migration": "fleet migration cost (boundary drain + re-create)",
}

#: Wait-side labels eligible for stall/migration carve-outs and for
#: interference blame (everything that is not execution).
_WAIT_LABELS = frozenset(("sched_wait", "handler", "queue"))

#: Terminal tags a span can close with.
TERMINALS = (
    "complete", "aborted", "killed", "exited", "migrated", "truncated",
)


# ----------------------------------------------------------------------
# Span-pair registry (NEON406's source of truth)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpanPairSpec:
    """One registered begin/end event-kind pairing."""

    name: str
    begin: str
    ends: tuple[str, ...]
    #: Payload fields forming the correlation key between begin and end.
    key: tuple[str, ...]


#: pair name -> spec.  Populated by :func:`register_span_pair`.
SPAN_PAIRS: dict[str, SpanPairSpec] = {}


def register_span_pair(
    name: str, begin: str, ends: tuple[str, ...], key: tuple[str, ...]
) -> SpanPairSpec:
    """Register a pairing; every kind must exist in the event registry."""
    if name in SPAN_PAIRS:
        raise ValueError(f"span pair {name!r} registered twice")
    for kind in (begin, *ends):
        if kind not in events.EVENT_KINDS:
            raise ValueError(
                f"span pair {name!r} references unregistered kind {kind!r}"
            )
    spec = SpanPairSpec(name, begin, tuple(ends), tuple(key))
    SPAN_PAIRS[name] = spec
    return spec


BARRIER = register_span_pair(
    "barrier", events.BARRIER_BEGIN, (events.BARRIER_END,), ("episode",),
)
SAMPLE_WINDOW = register_span_pair(
    "sample_window",
    events.SAMPLE_WINDOW_BEGIN, (events.SAMPLE_WINDOW_END,), ("task",),
)
SCHED_WAIT = register_span_pair(
    "sched.wait",
    events.SCHED_WAIT_BEGIN, (events.SCHED_WAIT_END,), ("task", "channel"),
)
EXEC = register_span_pair(
    "exec",
    events.EXEC_BEGIN,
    (events.REQUEST_COMPLETE, events.REQUEST_ABORTED,
     events.REQUEST_PREEMPTED),
    ("channel", "ref"),
)
FLEET_MIGRATE = register_span_pair(
    "fleet.migrate",
    events.FLEET_MIGRATE_BEGIN, (events.FLEET_MIGRATE_END,), ("task",),
)

#: Pairs rebuilt generically as :class:`SystemSpan` timeline entries
#: (request-lifecycle pairs are consumed by the span state machine).
_SYSTEM_PAIRS = (BARRIER, SAMPLE_WINDOW, FLEET_MIGRATE)


def span_kinds() -> frozenset[str]:
    """Every event kind participating in a registered span pair."""
    out: set[str] = set()
    for spec in SPAN_PAIRS.values():
        out.add(spec.begin)
        out.update(spec.ends)
    return frozenset(out)


def span_constant_names() -> frozenset[str]:
    """Names of :mod:`repro.obs.events` constants holding span-pair
    kinds — what neonlint's NEON406 resolves identifiers against."""
    kinds = span_kinds()
    return frozenset(
        name
        for name in events.constant_names()
        if getattr(events, name) in kinds
    )


# ----------------------------------------------------------------------
# Result model
# ----------------------------------------------------------------------

def _us(t: float) -> int:
    """Integer-microsecond cut point (round-half-even, monotone)."""
    return int(round(t))


@dataclass(frozen=True)
class Segment:
    """One labeled, contiguous slice of a span's timeline."""

    label: str
    start_us: int
    end_us: int

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


@dataclass
class Span:
    """One request's reconstructed lifecycle."""

    span_id: int
    task: str
    device: int
    channel: Optional[int]
    ref: Optional[int]
    start_us: float
    end_us: float
    terminal: str
    migration_epoch: int
    segments: tuple[Segment, ...]
    components: dict[str, int]
    #: Device-observed latency from the completion event, when present
    #: (enqueue → completion; excludes the handler/scheduler wait).
    latency_us: Optional[float] = None

    @property
    def duration_us(self) -> int:
        """Integer span duration; equals ``sum(components.values())``."""
        return sum(self.components.values())

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "task": self.task,
            "device": self.device,
            "channel": self.channel,
            "ref": self.ref,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "terminal": self.terminal,
            "migration_epoch": self.migration_epoch,
            "segments": [
                [seg.label, seg.start_us, seg.end_us] for seg in self.segments
            ],
            "components": dict(self.components),
            "latency_us": self.latency_us,
        }


@dataclass(frozen=True)
class SystemSpan:
    """A non-request paired interval (barrier, sampling window, migration)."""

    pair: str
    key: tuple
    device: int
    start_us: float
    end_us: float
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pair": self.pair,
            "key": list(self.key),
            "device": self.device,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "payload": dict(self.payload),
        }


@dataclass(frozen=True)
class ExecInterval:
    """Engine occupancy: who held a device engine over an interval."""

    device: int
    task: str
    start_us: int
    end_us: int


@dataclass(frozen=True)
class MigrationLink:
    """The join between a task's pre- and post-migration span epochs."""

    task: str
    src: int
    dst: int
    start_us: float
    end_us: float
    cost_us: float
    epoch: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "src": self.src,
            "dst": self.dst,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "cost_us": self.cost_us,
            "epoch": self.epoch,
        }


# ----------------------------------------------------------------------
# Builder internals
# ----------------------------------------------------------------------

class _OpenSpan:
    """Mutable span under construction: a list of (cut, label) phases."""

    __slots__ = (
        "task", "device", "channel", "ref", "start_us", "cuts", "epoch",
    )

    def __init__(
        self,
        task: str,
        device: int,
        channel: Optional[int],
        start_us: float,
        label: str,
        epoch: int,
    ) -> None:
        self.task = task
        self.device = device
        self.channel = channel
        self.ref: Optional[int] = None
        self.start_us = start_us
        #: (time, label active from that time); times are non-decreasing.
        self.cuts: list[tuple[int, str]] = [(_us(start_us), label)]
        self.epoch = epoch

    def cut(self, t: float, label: str) -> None:
        at = _us(t)
        last_at, last_label = self.cuts[-1]
        if at < last_at:
            at = last_at
        if label == last_label:
            return
        if at == last_at:
            # Zero-length phase: replace, collapsing with the predecessor
            # when the replacement matches it.
            if len(self.cuts) >= 2 and self.cuts[-2][1] == label:
                self.cuts.pop()
            else:
                self.cuts[-1] = (at, label)
        else:
            self.cuts.append((at, label))


@dataclass
class _ClosedSpan:
    open: _OpenSpan
    end_us: float
    end_at: int
    terminal: str
    latency_us: Optional[float]


def _carve(
    segments: list[Segment],
    windows: list[tuple[int, int]],
    label: str,
) -> list[Segment]:
    """Relabel the overlap of wait segments with ``windows`` as ``label``.

    A pure sub-partition: total duration is preserved exactly."""
    if not windows:
        return segments
    out: list[Segment] = []
    for seg in segments:
        if seg.label not in _WAIT_LABELS:
            out.append(seg)
            continue
        pieces = [seg]
        for win_start, win_end in windows:
            next_pieces: list[Segment] = []
            for piece in pieces:
                if piece.label not in _WAIT_LABELS:
                    next_pieces.append(piece)
                    continue
                lo = max(piece.start_us, win_start)
                hi = min(piece.end_us, win_end)
                if lo >= hi:
                    next_pieces.append(piece)
                    continue
                if piece.start_us < lo:
                    next_pieces.append(Segment(piece.label, piece.start_us, lo))
                next_pieces.append(Segment(label, lo, hi))
                if hi < piece.end_us:
                    next_pieces.append(Segment(label=piece.label,
                                               start_us=hi,
                                               end_us=piece.end_us))
            pieces = next_pieces
        out.extend(pieces)
    return _merge(out)


def _merge(segments: list[Segment]) -> list[Segment]:
    """Drop empty segments and fuse adjacent same-label ones."""
    merged: list[Segment] = []
    for seg in segments:
        if seg.start_us >= seg.end_us:
            continue
        if merged and merged[-1].label == seg.label \
                and merged[-1].end_us == seg.start_us:
            merged[-1] = Segment(seg.label, merged[-1].start_us, seg.end_us)
        else:
            merged.append(seg)
    return merged


class SpanBuilder:
    """The reconstruction state machine (live sink or replay driver).

    Register an instance with ``trace.add_sink(builder)`` for live
    builds, or feed records through :meth:`observe`; call
    :meth:`finish` once to obtain the immutable :class:`SpanSet`.
    """

    def __init__(self) -> None:
        #: Pre-submit groups per (device, channel): faults whose request
        #: has no device ``ref`` yet; married FIFO to the next
        #: ``request_submit`` on the same channel.
        self._presubmit: dict[tuple[int, int], deque[_OpenSpan]] = {}
        #: Post-submit spans keyed by (device, channel, ref).
        self._inflight: dict[tuple[int, Optional[int], Any], _OpenSpan] = {}
        self._closed: list[_ClosedSpan] = []
        #: Open engine occupancy per (device, source).
        self._busy: dict[tuple[int, str], list] = {}
        self._exec: list[ExecInterval] = []
        #: Open watchdog stall per (device, task) -> start cut.
        self._stall_open: dict[tuple[int, str], int] = {}
        self._stalls: dict[int, list[tuple[int, int]]] = {}
        #: Open migration per task -> (src, dst, begin time).
        self._migration_open: dict[str, tuple[int, int, float]] = {}
        self._migrations: list[MigrationLink] = []
        self._mig_windows: dict[str, list[tuple[int, int]]] = {}
        self._epoch: dict[str, int] = {}
        self._system_open: dict[tuple, tuple[float, int, dict]] = {}
        self._system: list[SystemSpan] = []
        self._end_us = 0.0
        self._result: Optional["SpanSet"] = None

    # -- sink protocol --------------------------------------------------
    def __call__(self, record: TraceRecord) -> None:
        self.observe(record)

    # -- record dispatch ------------------------------------------------
    def observe(self, record: TraceRecord) -> None:
        if self._result is not None:
            raise RuntimeError("SpanBuilder already finished")
        t = record.time
        if t > self._end_us:
            self._end_us = t
        kind = record.kind
        payload = record.payload
        device = payload.get("device", 0)
        if not isinstance(device, int):
            device = 0

        if kind == events.FAULT:
            task = payload.get("task")
            channel = payload.get("channel")
            if isinstance(task, str):
                span = _OpenSpan(
                    task, device, channel, t, "handler",
                    self._epoch.get(task, 0),
                )
                self._presubmit.setdefault((device, channel), deque()) \
                    .append(span)
        elif kind == events.SCHED_WAIT_BEGIN:
            span = self._presubmit_tail(device, payload.get("channel"))
            if span is not None:
                span.cut(t, "sched_wait")
        elif kind == events.SCHED_WAIT_END:
            span = self._presubmit_tail(device, payload.get("channel"))
            if span is not None:
                span.cut(t, "handler")
        elif kind == events.REQUEST_SUBMIT:
            task = payload.get("task")
            channel = payload.get("channel")
            ref = payload.get("ref")
            if not isinstance(task, str):
                return
            queue = self._presubmit.get((device, channel))
            if queue:
                span = queue.popleft()
            else:
                # Direct (unprotected) submit: the doorbell write is the
                # first observable point of this request's life.
                span = _OpenSpan(
                    task, device, channel, t, "queue",
                    self._epoch.get(task, 0),
                )
            span.ref = ref
            span.cut(t, "queue")
            self._inflight[(device, channel, ref)] = span
        elif kind == events.EXEC_BEGIN:
            channel = payload.get("channel")
            ref = payload.get("ref")
            span = self._inflight.get((device, channel, ref))
            if span is not None:
                span.cut(t, "exec")
            self._busy_begin(
                device, record.source, payload.get("task"), channel, ref, t
            )
        elif kind == events.REQUEST_PREEMPTED:
            channel = payload.get("channel")
            ref = payload.get("ref")
            span = self._inflight.get((device, channel, ref))
            if span is not None:
                span.cut(t, "queue")
            self._busy_end(device, record.source, channel, ref, t)
        elif kind in (events.REQUEST_COMPLETE, events.REQUEST_ABORTED):
            channel = payload.get("channel")
            ref = payload.get("ref")
            span = self._inflight.pop((device, channel, ref), None)
            if span is not None:
                terminal = (
                    "complete" if kind == events.REQUEST_COMPLETE
                    else "aborted"
                )
                latency = payload.get("latency_us")
                self._close(
                    span, t, terminal,
                    latency if isinstance(latency, (int, float)) else None,
                )
            self._busy_end(device, record.source, channel, ref, t)
        elif kind == events.CONTEXT_KILLED:
            task = payload.get("task")
            if isinstance(task, str):
                terminal = (
                    "migrated" if task in self._migration_open else "killed"
                )
                self._close_task(task, t, terminal, device=device)
        elif kind in (events.TASK_EXIT, events.TASK_KILLED):
            task = payload.get("task")
            if isinstance(task, str):
                terminal = "exited" if kind == events.TASK_EXIT else "killed"
                self._close_task(task, t, terminal)
        elif kind == events.FAULT_DETECTED:
            task = payload.get("task")
            if isinstance(task, str):
                self._stall_open.setdefault((device, task), _us(t))
        elif kind in (events.FAULT_RECOVERED, events.FAULT_ESCALATED):
            task = payload.get("task")
            start = self._stall_open.pop((device, task), None)
            if start is not None:
                self._stalls.setdefault(device, []).append((start, _us(t)))

        spec, is_begin = _PAIR_BY_KIND.get(kind, (None, False))
        if spec is not None:
            self._system_boundary(spec, is_begin, record, device, t)
        if kind == events.FLEET_MIGRATE_BEGIN:
            task = payload.get("task")
            if isinstance(task, str):
                self._migration_open[task] = (
                    payload.get("src", device), payload.get("dst", device), t,
                )
        elif kind == events.FLEET_MIGRATE_END:
            task = payload.get("task")
            entry = self._migration_open.pop(task, None)
            if entry is not None:
                src, dst, begin = entry
                epoch = self._epoch.get(task, 0)
                cost = payload.get("cost_us", 0.0)
                self._migrations.append(MigrationLink(
                    task, src, dst, begin, t,
                    cost if isinstance(cost, (int, float)) else 0.0, epoch,
                ))
                self._mig_windows.setdefault(task, []) \
                    .append((_us(begin), _us(t)))
                self._epoch[task] = epoch + 1

    # -- helpers --------------------------------------------------------
    def _presubmit_tail(
        self, device: int, channel: Optional[int]
    ) -> Optional[_OpenSpan]:
        queue = self._presubmit.get((device, channel))
        return queue[-1] if queue else None

    def _busy_begin(self, device, source, task, channel, ref, t) -> None:
        key = (device, source)
        open_entry = self._busy.get(key)
        if open_entry is not None:
            # The engine moved on without this builder seeing a terminal
            # (e.g. a completion publication stalled past the next
            # dispatch): close the occupancy at the successor's start.
            self._busy_record(open_entry, t)
        self._busy[key] = [task, channel, ref, _us(t), device]

    def _busy_end(self, device, source, channel, ref, t) -> None:
        key = (device, source)
        entry = self._busy.get(key)
        if entry is not None and entry[1] == channel and entry[2] == ref:
            del self._busy[key]
            self._busy_record(entry, t)

    def _busy_record(self, entry: list, t: float) -> None:
        task, _channel, _ref, start, device = entry
        end = max(_us(t), start)
        if isinstance(task, str) and end > start:
            self._exec.append(ExecInterval(device, task, start, end))

    def _system_boundary(self, spec, is_begin, record, device, t) -> None:
        payload = record.payload
        key = (spec.name, device,
               tuple(payload.get(name) for name in spec.key))
        if is_begin:
            self._system_open[key] = (t, _us(t), dict(payload))
        else:
            entry = self._system_open.pop(key, None)
            if entry is None:
                return
            begin_t, _begin_at, begin_payload = entry
            merged = dict(begin_payload)
            merged.update(payload)
            self._system.append(SystemSpan(
                spec.name, key[2], device, begin_t, t, merged,
            ))

    def _close(
        self,
        span: _OpenSpan,
        t: float,
        terminal: str,
        latency_us: Optional[float] = None,
    ) -> None:
        end_at = max(_us(t), span.cuts[-1][0])
        self._closed.append(_ClosedSpan(span, t, end_at, terminal, latency_us))

    def _close_task(
        self,
        task: str,
        t: float,
        terminal: str,
        device: Optional[int] = None,
    ) -> None:
        for key in [k for k, q in self._presubmit.items()
                    if q and (device is None or k[0] == device)]:
            queue = self._presubmit[key]
            keep: deque[_OpenSpan] = deque()
            for span in queue:
                if span.task == task:
                    self._close(span, t, terminal)
                else:
                    keep.append(span)
            if keep:
                self._presubmit[key] = keep
            else:
                del self._presubmit[key]
        for key in [k for k, s in self._inflight.items()
                    if s.task == task and (device is None or k[0] == device)]:
            self._close(self._inflight.pop(key), t, terminal)
        for key in [k for k, entry in self._busy.items()
                    if entry[0] == task and (device is None or k[0] == device)]:
            entry = self._busy.pop(key)
            self._busy_record(entry, t)

    # -- finalization ---------------------------------------------------
    def finish(self, end_us: Optional[float] = None) -> "SpanSet":
        """Close everything still open (terminal ``truncated``) and build
        the immutable result.  Idempotent: later calls return the same
        :class:`SpanSet`."""
        if self._result is not None:
            return self._result
        end = self._end_us if end_us is None else max(end_us, self._end_us)
        for queue in self._presubmit.values():
            for span in queue:
                self._close(span, end, "truncated")
        self._presubmit.clear()
        for span in list(self._inflight.values()):
            self._close(span, end, "truncated")
        self._inflight.clear()
        for entry in list(self._busy.values()):
            self._busy_record(entry, end)
        self._busy.clear()
        for (device, _task), start in sorted(self._stall_open.items()):
            self._stalls.setdefault(device, []).append((start, _us(end)))
        self._stall_open.clear()

        stalls = {
            device: sorted(windows)
            for device, windows in self._stalls.items()
        }
        spans: list[Span] = []
        for index, closed in enumerate(self._closed):
            spans.append(self._materialize(index, closed, stalls))
        exec_intervals = sorted(
            self._exec,
            key=lambda iv: (iv.device, iv.start_us, iv.end_us, iv.task),
        )
        self._result = SpanSet(
            spans=spans,
            system_spans=list(self._system),
            migrations=list(self._migrations),
            exec_intervals=exec_intervals,
            end_us=end,
        )
        return self._result

    def _materialize(
        self,
        span_id: int,
        closed: _ClosedSpan,
        stalls: dict[int, list[tuple[int, int]]],
    ) -> Span:
        span = closed.open
        segments: list[Segment] = []
        cuts = span.cuts
        for position, (at, label) in enumerate(cuts):
            until = (
                cuts[position + 1][0] if position + 1 < len(cuts)
                else closed.end_at
            )
            segments.append(Segment(label, at, until))
        segments = _merge(segments)
        segments = _carve(segments, stalls.get(span.device, []), "stall")
        segments = _carve(
            segments, self._mig_windows.get(span.task, []), "migration"
        )
        components = {label: 0 for label in COMPONENTS}
        for seg in segments:
            components[seg.label] = (
                components.get(seg.label, 0) + seg.duration_us
            )
        return Span(
            span_id=span_id,
            task=span.task,
            device=span.device,
            channel=span.channel,
            ref=span.ref,
            start_us=span.start_us,
            end_us=closed.end_us,
            terminal=closed.terminal,
            migration_epoch=span.epoch,
            segments=tuple(segments),
            components=components,
            latency_us=closed.latency_us,
        )


# ----------------------------------------------------------------------
# The result set
# ----------------------------------------------------------------------

@dataclass
class SpanSet:
    """Immutable reconstruction result: spans + the context to read them."""

    spans: list[Span]
    system_spans: list[SystemSpan]
    migrations: list[MigrationLink]
    exec_intervals: list[ExecInterval]
    end_us: float

    # -- selection ------------------------------------------------------
    def select(
        self,
        task: Optional[str] = None,
        device: Optional[int] = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
        terminal: Optional[str] = None,
    ) -> list[Span]:
        """Spans filtered by task/device/terminal and *ending* inside
        ``[start_us, end_us)`` — the same binning the windowed monitor
        applies to completions."""
        out = []
        for span in self.spans:
            if task is not None and span.task != task:
                continue
            if device is not None and span.device != device:
                continue
            if terminal is not None and span.terminal != terminal:
                continue
            if start_us is not None and span.end_us < start_us:
                continue
            if end_us is not None and span.end_us >= end_us:
                continue
            out.append(span)
        return out

    def tasks(self) -> list[str]:
        return sorted({span.task for span in self.spans})

    # -- decomposition --------------------------------------------------
    @staticmethod
    def decompose(spans: Iterable[Span]) -> dict[str, int]:
        """Aggregate components over a span subset (integer µs)."""
        totals = {label: 0 for label in COMPONENTS}
        for span in spans:
            for label, value in span.components.items():
                totals[label] = totals.get(label, 0) + value
        return totals

    def blame(self, spans: Iterable[Span]) -> dict[str, int]:
        """Interference: µs of other tenants' engine occupancy
        overlapping the given spans' wait segments, per occupant.

        The per-victim rows of the tenant×tenant blame matrix come from
        calling this once per victim's span subset."""
        by_device: dict[int, list[ExecInterval]] = {}
        for interval in self.exec_intervals:
            by_device.setdefault(interval.device, []).append(interval)
        prepared: dict[int, tuple[list[int], list[int], list[ExecInterval]]]
        prepared = {}
        for device, intervals in by_device.items():
            starts = [iv.start_us for iv in intervals]
            max_end: list[int] = []
            running = 0
            for interval in intervals:
                running = max(running, interval.end_us)
                max_end.append(running)
            prepared[device] = (starts, max_end, intervals)
        out: dict[str, int] = {}
        for span in spans:
            entry = prepared.get(span.device)
            if entry is None:
                continue
            starts, max_end, intervals = entry
            for seg in span.segments:
                if seg.label == "exec":
                    continue
                index = bisect_right(starts, seg.end_us) - 1
                while index >= 0 and max_end[index] > seg.start_us:
                    interval = intervals[index]
                    index -= 1
                    if interval.task == span.task:
                        continue
                    overlap = (
                        min(seg.end_us, interval.end_us)
                        - max(seg.start_us, interval.start_us)
                    )
                    if overlap > 0:
                        out[interval.task] = (
                            out.get(interval.task, 0) + overlap
                        )
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def blame_matrix(self) -> dict[str, dict[str, int]]:
        """Full tenant×tenant interference matrix (victim -> occupant)."""
        matrix: dict[str, dict[str, int]] = {}
        for task in self.tasks():
            row = self.blame(self.select(task=task))
            if row:
                matrix[task] = row
        return matrix

    def critical_path(self, task: str) -> dict[str, Any]:
        """Per-tenant critical path: the aggregate decomposition plus the
        single longest span's segment chain (where the worst request's
        time actually went)."""
        spans = self.select(task=task)
        totals = self.decompose(spans)
        worst = max(spans, key=lambda span: span.duration_us, default=None)
        return {
            "task": task,
            "spans": len(spans),
            "total_us": sum(totals.values()),
            "components": totals,
            "critical_span": worst.to_dict() if worst is not None else None,
        }

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": SPANS_FORMAT,
            "version": SPANS_VERSION,
            "end_us": self.end_us,
            "spans": [span.to_dict() for span in self.spans],
            "system_spans": [span.to_dict() for span in self.system_spans],
            "migrations": [link.to_dict() for link in self.migrations],
            "exec_intervals": [
                [iv.device, iv.task, iv.start_us, iv.end_us]
                for iv in self.exec_intervals
            ],
        }


#: kind -> (pair spec, is_begin) for the generic system-span boundaries.
_PAIR_BY_KIND: dict[str, tuple[SpanPairSpec, bool]] = {}
for _spec in _SYSTEM_PAIRS:
    _PAIR_BY_KIND[_spec.begin] = (_spec, True)
    for _end in _spec.ends:
        _PAIR_BY_KIND[_end] = (_spec, False)


def build_spans(
    trace: Union[TraceRecorder, Iterable[TraceRecord]],
    end_us: Optional[float] = None,
) -> SpanSet:
    """Replay a trace (recorder or record iterable) into a span set.

    Replay over a ring-buffered recorder covers what the buffer
    retained; feed the builder as a live sink for eviction-independent
    reconstruction."""
    builder = SpanBuilder()
    records: Iterable[TraceRecord]
    if isinstance(trace, TraceRecorder):
        records = trace.records()
    else:
        records = trace
    for record in records:
        builder.observe(record)
    return builder.finish(end_us)
