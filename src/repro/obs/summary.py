"""Per-task trace summaries and trace diffs for the ``repro trace`` CLI.

A :class:`TaskSummary` is reconstructed from the trace alone: request and
fault counts directly from their events, engaged/disengaged time by
replaying the interception layer's protection flips per channel.  A
channel is accounted from its first appearance in the trace; pages start
unprotected (disengaged), matching device discovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs import events
from repro.obs.overhead import overhead_breakdown
from repro.sim.trace import TraceRecorder


def task_key(payload: dict) -> Optional[str]:
    """Grouping key for a record's task: ``name``, or ``name@dN`` when
    the record carries a fleet ``device`` tag.  Single-device traces
    carry no tag and summarize exactly as before."""
    task = payload.get("task")
    if not isinstance(task, str):
        return None
    device = payload.get("device")
    if device is None:
        return task
    return f"{task}@d{device}"


@dataclass
class TaskSummary:
    """What one task did, as seen by the trace."""

    task: str
    submits: int = 0
    completes: int = 0
    aborts: int = 0
    faults: int = 0
    denials: int = 0
    samples: int = 0
    engaged_us: float = 0.0
    disengaged_us: float = 0.0
    killed: bool = False
    exited: bool = False
    latency_sum_us: float = 0.0
    latency_count: int = 0
    faults_injected: int = 0
    fault_detections: int = 0
    fault_recoveries: int = 0
    fault_escalations: int = 0

    @property
    def mean_latency_us(self) -> Optional[float]:
        if self.latency_count == 0:
            return None
        return self.latency_sum_us / self.latency_count

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "submits": self.submits,
            "completes": self.completes,
            "aborts": self.aborts,
            "faults": self.faults,
            "denials": self.denials,
            "samples": self.samples,
            "engaged_us": self.engaged_us,
            "disengaged_us": self.disengaged_us,
            "killed": self.killed,
            "exited": self.exited,
            "latency_sum_us": self.latency_sum_us,
            "latency_count": self.latency_count,
            "mean_latency_us": self.mean_latency_us,
            "faults_injected": self.faults_injected,
            "fault_detections": self.fault_detections,
            "fault_recoveries": self.fault_recoveries,
            "fault_escalations": self.fault_escalations,
        }


@dataclass(frozen=True)
class FaultIncident:
    """One entry of the injection/recovery timeline, in trace order."""

    time_us: float
    kind: str
    task: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "time_us": self.time_us,
            "kind": self.kind,
            "task": self.task,
            "detail": self.detail,
        }


@dataclass
class TraceSummary:
    """Whole-trace rollup: per-task summaries plus the overhead view."""

    span_us: tuple[float, float]
    records: int
    dropped: int
    kind_counts: dict[str, int]
    tasks: dict[str, TaskSummary] = field(default_factory=dict)
    breakdown: dict[str, float] = field(default_factory=dict)
    #: Injection and watchdog events in trace order; empty without faults.
    fault_timeline: list[FaultIncident] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-able form (``repro trace summary --json``); consumed by
        ``repro why`` for its run overview."""
        return {
            "span_us": [self.span_us[0], self.span_us[1]],
            "records": self.records,
            "dropped": self.dropped,
            "kind_counts": dict(self.kind_counts),
            "tasks": {
                name: task.to_dict() for name, task in self.tasks.items()
            },
            "breakdown": dict(self.breakdown),
            "fault_timeline": [
                incident.to_dict() for incident in self.fault_timeline
            ],
        }


@dataclass
class _ChannelReplay:
    task: str
    engaged: bool
    since: float
    totals: TaskSummary

    def settle(self, now: float) -> None:
        elapsed = now - self.since
        if elapsed > 0:
            if self.engaged:
                self.totals.engaged_us += elapsed
            else:
                self.totals.disengaged_us += elapsed
        self.since = now


def summarize(trace: TraceRecorder, end_us: Optional[float] = None) -> TraceSummary:
    """Build a :class:`TraceSummary` by replaying the trace."""
    if end_us is None:
        end_us = trace.span_us[1]

    tasks: dict[str, TaskSummary] = {}
    channels: dict[int, _ChannelReplay] = {}
    timeline: list[FaultIncident] = []

    def task_summary(name: str) -> TaskSummary:
        summary = tasks.get(name)
        if summary is None:
            summary = TaskSummary(name)
            tasks[name] = summary
        return summary

    def sight_channel(record) -> None:
        """First sighting of a channel starts its engagement accounting."""
        channel_id = record.payload.get("channel")
        task = task_key(record.payload)
        if not isinstance(channel_id, int) or task is None:
            return
        if channel_id not in channels:
            channels[channel_id] = _ChannelReplay(
                task, False, record.time, task_summary(task)
            )

    def fault_event(record, detail: str) -> None:
        task = task_key(record.payload)
        timeline.append(
            FaultIncident(record.time, record.kind, task or "", detail)
        )

    for record in trace.records():
        payload = record.payload
        task = task_key(payload)
        sight_channel(record)
        if record.kind == events.FAULT_INJECTED:
            fault_event(record, payload.get("point", ""))
            if task:
                task_summary(task).faults_injected += 1
            continue
        elif record.kind == events.WATCHDOG_RETRY:
            fault_event(
                record,
                f"attempt {payload.get('attempt')} "
                f"(timeout {payload.get('timeout_us')} us)",
            )
            continue
        if task is None:
            continue
        if record.kind == events.REQUEST_SUBMIT:
            task_summary(task).submits += 1
        elif record.kind == events.REQUEST_COMPLETE:
            summary = task_summary(task)
            summary.completes += 1
            latency = payload.get("latency_us")
            if isinstance(latency, (int, float)):
                summary.latency_sum_us += latency
                summary.latency_count += 1
        elif record.kind == events.REQUEST_ABORTED:
            task_summary(task).aborts += 1
        elif record.kind == events.FAULT:
            task_summary(task).faults += 1
        elif record.kind == events.DENIAL:
            task_summary(task).denials += 1
        elif record.kind == events.SAMPLE_WINDOW_END:
            summary = task_summary(task)
            observed = payload.get("observed")
            if isinstance(observed, int):
                summary.samples += observed
        elif record.kind == events.FAULT_DETECTED:
            task_summary(task).fault_detections += 1
            fault_event(record, f"waited {payload.get('waited_us')} us")
        elif record.kind == events.FAULT_RECOVERED:
            task_summary(task).fault_recoveries += 1
            fault_event(record, payload.get("action", ""))
        elif record.kind == events.FAULT_ESCALATED:
            task_summary(task).fault_escalations += 1
            fault_event(record, payload.get("reason", ""))
        elif record.kind == events.TASK_KILLED:
            task_summary(task).killed = True
        elif record.kind == events.TASK_EXIT:
            task_summary(task).exited = True
        elif record.kind in (events.CHANNEL_ENGAGED, events.CHANNEL_DISENGAGED):
            channel_id = payload.get("channel")
            replay = channels.get(channel_id)
            engaged = record.kind == events.CHANNEL_ENGAGED
            if replay is not None and replay.engaged != engaged:
                replay.settle(record.time)
                replay.engaged = engaged

    for channel_id in sorted(channels):
        channels[channel_id].settle(end_us)

    return TraceSummary(
        span_us=trace.span_us,
        records=len(trace),
        dropped=trace.dropped,
        kind_counts=trace.kind_counts(),
        tasks=dict(sorted(tasks.items())),
        breakdown=overhead_breakdown(trace, end_us=end_us),
        fault_timeline=timeline,
    )


def diff_counts(
    left: TraceRecorder, right: TraceRecorder
) -> dict[str, tuple[int, int]]:
    """Per-kind record counts that differ between two traces."""
    left_counts = left.kind_counts()
    right_counts = right.kind_counts()
    out: dict[str, tuple[int, int]] = {}
    for kind in sorted(set(left_counts) | set(right_counts)):
        left_value = left_counts.get(kind, 0)
        right_value = right_counts.get(kind, 0)
        if left_value != right_value:
            out[kind] = (left_value, right_value)
    return out


def diff_tasks(
    left: TraceSummary, right: TraceSummary
) -> dict[str, dict[str, tuple[float, float]]]:
    """Per-task metric pairs that differ between two summaries."""
    fields = (
        "submits", "completes", "aborts", "faults", "denials",
        "engaged_us", "disengaged_us",
        "faults_injected", "fault_detections", "fault_recoveries",
        "fault_escalations",
    )
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for task in sorted(set(left.tasks) | set(right.tasks)):
        left_task = left.tasks.get(task) or TaskSummary(task)
        right_task = right.tasks.get(task) or TaskSummary(task)
        deltas: dict[str, tuple[float, float]] = {}
        for name in fields:
            left_value = getattr(left_task, name)
            right_value = getattr(right_task, name)
            if left_value != right_value:
                deltas[name] = (left_value, right_value)
        if deltas:
            out[task] = deltas
    return out
