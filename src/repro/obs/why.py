"""``repro why``: root-cause attribution for tail latency and regressions.

The PR-8 monitors *detect* (a violated p99, a fairness-floor breach);
this command answers **why**, from the causal span layer
(:mod:`repro.obs.spans`):

* which delay component dominated the offending window — scheduler
  queue-wait, device queue contention, execution, fault-recovery stall,
  or migration cost — with its share of the window's total span time;
* which tenants interfered (engine occupancy overlapping the victim's
  wait), ranked;
* the victim's critical span: where the single worst request's time went.

Three ways to point it at a run::

    repro why --scheduler dfq --apps glxgears,BitonicSort    # inline run
    repro why trace.jsonl --window-us 10000                  # replay
    repro why trace.jsonl --report monitor-report.json       # fired SLO

With ``--report`` the offending window and victim come from the first
fired SLO violation of a ``repro monitor`` report; otherwise the worst
p99 window is located by scanning ``--window-us`` bins.  The run
overview is consumed from the machine-readable trace summary (the same
model as ``repro trace summary --json``).

The last stdout line is stable and greppable (CI asserts on it)::

    WHY dominant=<component> share=<pct>% task=<task> window=<s>-<e>us top=<tenant>

``repro why compare LEFT RIGHT`` attributes a cross-run regression
instead: it resolves two PR-5 run records and diffs them phase-by-phase,
naming the host phase that moved the most.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs.spans import (
    COMPONENT_LABELS,
    COMPONENTS,
    Span,
    SpanSet,
    build_spans,
)
from repro.obs.summary import summarize

#: Default attribution window width (µs) when no report pins one.
DEFAULT_WINDOW_US = 10_000.0


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro why",
        description=(
            "Attribute tail latency to its dominant delay component and "
            "the interfering tenants, from reconstructed lifecycle spans."
        ),
    )
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="JSONL trace file; omit to record a run inline",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="repro monitor JSON report: attribute the first fired SLO "
        "violation's window instead of scanning for the worst p99",
    )
    parser.add_argument(
        "--task", default=None,
        help="victim tenant (default: from the SLO event, or the task "
        "with the worst windowed p99)",
    )
    parser.add_argument(
        "--device", type=int, default=None,
        help="restrict attribution to one fleet device",
    )
    parser.add_argument(
        "--window-us", type=float, default=DEFAULT_WINDOW_US,
        help=f"attribution window width in µs (default: "
        f"{DEFAULT_WINDOW_US:g}; ignored when --report pins a window)",
    )
    parser.add_argument(
        "--top", type=int, default=3,
        help="interfering tenants to list (default: 3)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable attribution instead of the text rendering",
    )
    run = parser.add_argument_group("inline run (no trace file)")
    run.add_argument("--scheduler", default="dfq",
                     help="scheduler to run (default: dfq)")
    run.add_argument(
        "--apps", default="glxgears,BitonicSort",
        help="comma-separated Table 1 app names; repeat a name for "
        "multiple instances (default: glxgears,BitonicSort)",
    )
    run.add_argument("--duration-ms", type=float, default=None,
                     help="virtual duration in milliseconds (default: 400)")
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")
    run.add_argument(
        "--max-records", type=int, default=None,
        help="trace ring-buffer capacity for the inline run "
        "(default: unbounded — spans need the whole stream)",
    )
    run.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="JSON fault plan to install for the inline run",
    )
    return parser


def build_compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro why compare",
        description=(
            "Attribute a cross-run regression: diff two run records "
            "phase-by-phase and name the dominant mover."
        ),
    )
    parser.add_argument("left", help="baseline run (run id, 'last', or index)")
    parser.add_argument("right", help="current run (run id, 'last', or index)")
    parser.add_argument(
        "--experiment", default=None,
        help="restrict record resolution to one experiment",
    )
    parser.add_argument(
        "--store-dir", type=Path, default=None,
        help="run-record store directory (default: .repro/runs)",
    )
    parser.add_argument("--json", action="store_true",
                        help="machine-readable diff")
    return parser


# ----------------------------------------------------------------------
# Window/victim selection
# ----------------------------------------------------------------------

def _quantile(values: list[float], q: float) -> float:
    """Deterministic empirical quantile (no interpolation)."""
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


def _span_latency(span: Span) -> float:
    """The latency a span contributes to windowed quantiles: the full
    lifecycle duration.  Deliberately NOT the device-observed
    ``latency_us`` (submit -> complete): that misses pre-submit kernel
    blocking, and a request held 70 ms on a scheduler token would be
    invisible to the scan."""
    return float(span.duration_us)


def worst_window(
    span_set: SpanSet,
    window_us: float,
    task: Optional[str] = None,
    device: Optional[int] = None,
) -> Optional[tuple[str, float, float, float]]:
    """Scan fixed windows for the worst per-task p99.

    Returns ``(task, start_us, end_us, p99)`` or None when no window
    holds a completed span."""
    if window_us <= 0:
        raise ValueError("window_us must be positive")
    worst: Optional[tuple[str, float, float, float]] = None
    windows = max(1, math.ceil(span_set.end_us / window_us))
    for index in range(windows):
        start = index * window_us
        end = start + window_us
        by_task: dict[str, list[float]] = {}
        for span in span_set.select(
            task=task, device=device, start_us=start, end_us=end,
            terminal="complete",
        ):
            by_task.setdefault(span.task, []).append(_span_latency(span))
        for name in sorted(by_task):
            p99 = _quantile(by_task[name], 0.99)
            if worst is None or p99 > worst[3]:
                worst = (name, start, end, p99)
    return worst


def _report_violation(
    report: dict[str, Any], task: Optional[str] = None
) -> Optional[dict[str, Any]]:
    """The first fired violation in a monitor (or session) report,
    optionally restricted to one victim tenant."""
    events = list(report.get("slo_events", ()))
    for run in report.get("runs", ()):
        events.extend(run.get("slo_events", ()))
    for event in events:
        if event.get("event") != "violation":
            continue
        if task is not None and _split_tenant(event.get("task") or "")[0] != task:
            continue
        return event
    return None


def _window_bounds_from_report(
    report: dict[str, Any], event: dict[str, Any], fallback_us: float
) -> tuple[float, float]:
    """The violated window's ``[start, end)`` from the report's snapshot
    list, falling back to the report (or CLI) window width."""
    index = event.get("window")
    snapshots = list(report.get("windows", ()))
    for run in report.get("runs", ()):
        snapshots.extend(run.get("windows", ()))
    for snapshot in snapshots:
        if snapshot.get("index") == index:
            return float(snapshot["start_us"]), float(snapshot["end_us"])
    end = float(event.get("end_us", 0.0))
    width = float(report.get("window_us", fallback_us))
    return end - width, end


def _split_tenant(tenant: str) -> tuple[str, Optional[int]]:
    """``name@dN`` -> (name, N); plain names -> (name, None)."""
    name, sep, suffix = tenant.rpartition("@d")
    if sep and suffix.isdigit():
        return name, int(suffix)
    return tenant, None


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------

def attribute_window(
    span_set: SpanSet,
    task: str,
    start_us: float,
    end_us: float,
    device: Optional[int] = None,
    top: int = 3,
) -> dict[str, Any]:
    """Decompose the victim's spans ending in the window and rank the
    interfering tenants."""
    spans = span_set.select(
        task=task, device=device, start_us=start_us, end_us=end_us,
    )
    components = span_set.decompose(spans)
    total = sum(components.values())
    dominant = max(
        COMPONENTS, key=lambda label: (components.get(label, 0),),
    ) if total else None
    share = (
        components.get(dominant, 0) / total * 100.0
        if dominant is not None and total else 0.0
    )
    blame = span_set.blame(spans)
    worst = max(spans, key=lambda span: span.duration_us, default=None)
    latencies = [
        _span_latency(span) for span in spans if span.terminal == "complete"
    ]
    return {
        "task": task,
        "device": device,
        "window": [start_us, end_us],
        "spans": len(spans),
        "total_us": total,
        "p99_us": _quantile(latencies, 0.99) if latencies else None,
        "components": components,
        "dominant": dominant,
        "dominant_share_pct": share,
        "interference": [
            {"task": name, "overlap_us": overlap}
            for name, overlap in list(blame.items())[:top]
        ],
        "critical_span": worst.to_dict() if worst is not None else None,
    }


def _render(attribution: dict[str, Any], overview: dict[str, Any]) -> None:
    task = attribution["task"]
    start, end = attribution["window"]
    print(f"why: task {task}, window [{start:g}, {end:g}) us")
    summary_task = overview["tasks"].get(task)
    if summary_task is not None:
        mean = summary_task["mean_latency_us"]
        mean_text = f"{mean:.0f} us" if mean is not None else "-"
        print(
            f"  run overview: {summary_task['submits']} submits, "
            f"{summary_task['completes']} completes, "
            f"{summary_task['faults']} faults, mean latency {mean_text}"
        )
    p99 = attribution["p99_us"]
    p99_text = f", window p99 {p99:.0f} us" if p99 is not None else ""
    print(
        f"  spans ending in window: {attribution['spans']}, "
        f"decomposed {attribution['total_us']} us{p99_text}"
    )
    total = attribution["total_us"]
    if not total:
        print("  no spans to attribute in this window")
        return
    print("  decomposition:")
    for label in COMPONENTS:
        value = attribution["components"].get(label, 0)
        if not value:
            continue
        print(
            f"    {label:10s} {value:10d} us  ({value / total * 100.0:5.1f}%)"
            f"  {COMPONENT_LABELS[label]}"
        )
    dominant = attribution["dominant"]
    print(
        f"  dominant: {dominant} ({attribution['dominant_share_pct']:.1f}%) "
        f"— {COMPONENT_LABELS[dominant]}"
    )
    if attribution["interference"]:
        ranked = ", ".join(
            f"{entry['task']} ({entry['overlap_us']} us)"
            for entry in attribution["interference"]
        )
        print(f"  top interfering tenants: {ranked}")
    critical = attribution["critical_span"]
    if critical is not None:
        chain = " -> ".join(
            f"{label} {end_us - start_us}us"
            for label, start_us, end_us in critical["segments"]
        )
        print(
            f"  critical span: ref {critical['ref']} "
            f"({critical['terminal']}, {sum(critical['components'].values())}"
            f" us): {chain}"
        )


def blame_line(attribution: dict[str, Any]) -> str:
    """The stable, greppable verdict line."""
    start, end = attribution["window"]
    top = (
        attribution["interference"][0]["task"]
        if attribution["interference"] else "-"
    )
    dominant = attribution["dominant"] or "-"
    return (
        f"WHY dominant={dominant} "
        f"share={attribution['dominant_share_pct']:.1f}% "
        f"task={attribution['task']} "
        f"window={start:g}-{end:g}us top={top}"
    )


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------

def _obtain(args: argparse.Namespace):
    """(trace, end_us) from the file argument or an inline recording."""
    from repro.obs.cli import (
        DEFAULT_RECORD_DURATION_US,
        _parse_apps,
        record_trace,
    )
    from repro.obs.export import load_trace

    if args.trace is not None:
        return load_trace(args.trace), None
    duration_us = (
        args.duration_ms * 1000.0
        if args.duration_ms is not None
        else DEFAULT_RECORD_DURATION_US
    )
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
    return record_trace(
        args.scheduler, _parse_apps(args.apps), duration_us, args.seed,
        args.max_records, fault_plan,
    )


def cmd_why(args: argparse.Namespace) -> int:
    trace, end_us = _obtain(args)
    if trace.dropped:
        print(
            f"warning: trace is PARTIAL ({trace.dropped} records evicted); "
            "spans reconstructed from what the buffer retained",
            file=sys.stderr,
        )
    overview = summarize(trace, end_us=end_us).to_dict()
    span_set = build_spans(trace, end_us)
    device = args.device
    if args.report is not None:
        report = json.loads(Path(args.report).read_text(encoding="utf-8"))
        event = _report_violation(report, task=args.task)
        if event is None:
            scope = f" for task {args.task}" if args.task else ""
            print(f"why: the report contains no fired SLO violation{scope}",
                  file=sys.stderr)
            return 2
        start, end = _window_bounds_from_report(
            report, event, args.window_us
        )
        victim = args.task
        if victim is None:
            victim, event_device = _split_tenant(event.get("task") or "")
            if device is None:
                device = event_device
        if not victim:
            print(
                "why: the fired SLO is window-scoped (no victim tenant); "
                "pass --task to pick one",
                file=sys.stderr,
            )
            return 2
        if not args.json:
            print(
                f"why: attributing SLO violation rule={event.get('rule')} "
                f"({event.get('slo_kind')}) value={event.get('value'):g} "
                f"threshold={event.get('threshold'):g}"
            )
    else:
        found = worst_window(
            span_set, args.window_us, task=args.task, device=device,
        )
        if found is None:
            print("why: no completed spans to attribute", file=sys.stderr)
            return 2
        victim, start, end, _p99 = found
    attribution = attribute_window(
        span_set, victim, start, end, device=device, top=args.top,
    )
    if args.json:
        print(json.dumps(attribution, indent=2, sort_keys=True))
        return 0
    _render(attribution, overview)
    print(blame_line(attribution))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs.store import RunStore

    store = RunStore(args.store_dir)
    left = store.resolve(args.left, experiment=args.experiment)
    right = store.resolve(args.right, experiment=args.experiment)

    phase_deltas: list[tuple[str, float, float, float]] = []
    left_phases = left.get("phases") or {}
    right_phases = right.get("phases") or {}
    for phase in sorted(set(left_phases) | set(right_phases)):
        before = float((left_phases.get(phase) or {}).get("total_s", 0.0))
        after = float((right_phases.get(phase) or {}).get("total_s", 0.0))
        if before != after:
            phase_deltas.append((phase, before, after, after - before))
    phase_deltas.sort(key=lambda entry: (-abs(entry[3]), entry[0]))

    from repro.obs.store import compare_records, is_metric_path

    metric_diffs = {
        path: pair
        for path, pair in compare_records(left, right).items()
        if is_metric_path(path)
    }
    wall = (left.get("wall_s", 0.0), right.get("wall_s", 0.0))
    dominant = phase_deltas[0] if phase_deltas else None

    if args.json:
        print(json.dumps({
            "left": left.get("run_id"),
            "right": right.get("run_id"),
            "wall_s": list(wall),
            "phases": [
                {"phase": phase, "left_s": before, "right_s": after,
                 "delta_s": delta}
                for phase, before, after, delta in phase_deltas
            ],
            "dominant_phase": dominant[0] if dominant else None,
            "metric_diffs": {
                path: list(pair) for path, pair in metric_diffs.items()
            },
        }, indent=2, sort_keys=True))
        return 0

    print(
        f"why compare: {left.get('run_id')} -> {right.get('run_id')} "
        f"({left.get('experiment')})"
    )
    print(f"  wall: {wall[0]:.3f}s -> {wall[1]:.3f}s "
          f"({wall[1] - wall[0]:+.3f}s)")
    if phase_deltas:
        print("  host phases by |delta|:")
        for phase, before, after, delta in phase_deltas:
            print(f"    {phase:24s} {before:9.3f}s -> {after:9.3f}s "
                  f"({delta:+.3f}s)")
    else:
        print("  host phases: identical")
    if metric_diffs:
        print(f"  simulation metrics changed: {len(metric_diffs)} paths "
              "(deterministic per seed — the figures themselves moved):")
        for path in list(metric_diffs)[:10]:
            before, after = metric_diffs[path]
            print(f"    {path}: {before} -> {after}")
        if len(metric_diffs) > 10:
            print(f"    ... {len(metric_diffs) - 10} more")
    else:
        print("  simulation metrics: identical")
    if dominant is not None:
        print(
            f"WHY-COMPARE dominant_phase={dominant[0]} "
            f"delta_s={dominant[3]:+.3f} "
            f"wall={wall[0]:.3f}->{wall[1]:.3f}"
        )
    else:
        print(
            f"WHY-COMPARE dominant_phase=- delta_s=+0.000 "
            f"wall={wall[0]:.3f}->{wall[1]:.3f}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return cmd_compare(build_compare_parser().parse_args(argv[1:]))
    return cmd_why(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
