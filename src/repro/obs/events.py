"""The typed trace event-kind registry.

Every trace event the system emits has a *kind* registered here, with
the layer that owns it and the payload fields it carries.  Emit sites
reference the module-level constants (``events.FAULT``, never the string
``"fault"``); neonlint rule NEON401 rejects literal kinds and NEON402
rejects constants this registry does not know, so the taxonomy below is
the single source of truth for what a trace can contain.

The registry is deliberately flat and import-free: analysis tooling
(:mod:`repro.obs.summary`, :mod:`repro.obs.export`) and the static
analyzer both read it without touching the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EventKindSpec:
    """One registered trace event kind."""

    kind: str
    #: Layer that emits it: "gpu", "kernel", "neon", "scheduler",
    #: "faults" (the injection/watchdog subsystem, repro.faults),
    #: "obs" (the streaming monitor, repro.obs.windows / repro.obs.slo),
    #: or "fleet" (the multi-device registry, repro.fleet).
    layer: str
    description: str
    #: Payload field names the emit sites provide (documentation +
    #: registry-completeness tests; extra fields are allowed).
    payload: tuple[str, ...] = ()


#: kind string -> spec.  Populated by :func:`register_event_kind`.
EVENT_KINDS: dict[str, EventKindSpec] = {}


def register_event_kind(
    kind: str, layer: str, description: str, payload: tuple[str, ...] = ()
) -> str:
    """Register a kind; returns the kind string (assign it to a constant)."""
    if kind in EVENT_KINDS:
        raise ValueError(f"event kind {kind!r} registered twice")
    if layer not in (
        "gpu", "kernel", "neon", "scheduler", "faults", "obs", "fleet"
    ):
        raise ValueError(f"unknown layer {layer!r} for event kind {kind!r}")
    EVENT_KINDS[kind] = EventKindSpec(kind, layer, description, payload)
    return kind


def registered_kinds() -> tuple[str, ...]:
    """All registered kind strings, sorted."""
    return tuple(sorted(EVENT_KINDS))


def constant_names() -> frozenset[str]:
    """Names of the module-level constants holding registered kinds.

    This is what neonlint's NEON402 checks emit-site identifiers
    against: ``trace.emit(now, src, FAULT, ...)`` passes because
    ``FAULT`` is listed here; a constant defined elsewhere does not.
    """
    module = globals()
    return frozenset(
        name
        for name, value in module.items()
        if name.isupper()
        and isinstance(value, str)
        and value in EVENT_KINDS
    )


# ----------------------------------------------------------------------
# GPU layer (repro.gpu.device / repro.gpu.engine)
# ----------------------------------------------------------------------
REQUEST_SUBMIT = register_event_kind(
    "request_submit", "gpu",
    "a request's doorbell write reached the device and was enqueued",
    ("task", "channel", "ref", "size_us", "request_kind"),
)
REQUEST_COMPLETE = register_event_kind(
    "request_complete", "gpu",
    "the engine retired a request normally",
    ("task", "channel", "ref", "service_us", "latency_us"),
)
REQUEST_ABORTED = register_event_kind(
    "request_aborted", "gpu",
    "the engine aborted a running request (context kill)",
    ("task", "channel", "ref", "service_us"),
)
REQUEST_PREEMPTED = register_event_kind(
    "request_preempted", "gpu",
    "hardware preemption saved a request's state mid-execution (§6.2)",
    ("task", "channel", "ref", "remaining_us"),
)
CONTEXT_KILLED = register_event_kind(
    "context_killed", "gpu",
    "a device context was torn down by the driver's exit protocol",
    ("task",),
)
EXEC_BEGIN = register_event_kind(
    "exec.begin", "gpu",
    "the engine started (or resumed) executing a request segment; the "
    "matching terminal is request_complete/request_aborted/"
    "request_preempted (a registered span pair, repro.obs.spans)",
    ("task", "channel", "ref"),
)

# ----------------------------------------------------------------------
# Kernel layer (repro.osmodel.kernel)
# ----------------------------------------------------------------------
FAULT = register_event_kind(
    "fault", "kernel",
    "a store to a protected channel register trapped into the kernel",
    ("task", "channel", "ref"),
)
TASK_EXIT = register_event_kind(
    "task_exit", "kernel",
    "a task exited normally and released its device resources",
    ("task",),
)
TASK_KILLED = register_event_kind(
    "task_killed", "kernel",
    "the kernel killed a task (runaway protection, §3.1)",
    ("task", "reason"),
)
SCHED_WAIT_BEGIN = register_event_kind(
    "sched.wait_begin", "kernel",
    "the fault handler blocked a faulting task on the scheduler's "
    "verdict (disengaged denial wait, fair-queue token wait)",
    ("task", "channel"),
)
SCHED_WAIT_END = register_event_kind(
    "sched.wait_end", "kernel",
    "the scheduler released a blocked task; the handler resumes the "
    "single-stepped store",
    ("task", "channel", "waited_us"),
)

# ----------------------------------------------------------------------
# Interception layer (repro.neon)
# ----------------------------------------------------------------------
CHANNEL_ENGAGED = register_event_kind(
    "channel_engaged", "neon",
    "a channel register page was protected (interception / re-engagement)",
    ("task", "channel"),
)
CHANNEL_DISENGAGED = register_event_kind(
    "channel_disengaged", "neon",
    "a channel register page was unprotected (direct access granted)",
    ("task", "channel"),
)
DRAIN_STALL = register_event_kind(
    "drain_stall", "neon",
    "a drain finished or timed out; waited_us is the stall it cost",
    ("waited_us", "drained", "channels", "offenders"),
)

# ----------------------------------------------------------------------
# Scheduler layer (repro.core)
# ----------------------------------------------------------------------
BARRIER_BEGIN = register_event_kind(
    "barrier_begin", "scheduler",
    "an engagement episode began: protect every register page (Figure 3)",
    ("episode",),
)
BARRIER_END = register_event_kind(
    "barrier_end", "scheduler",
    "the submission barrier is up: all pages protected, flips charged",
    ("episode", "flips"),
)
SAMPLE_WINDOW_BEGIN = register_event_kind(
    "sample_window_begin", "scheduler",
    "a task's exclusive sampling window opened (§3.3 software statistics)",
    ("task", "target_requests"),
)
SAMPLE_WINDOW_END = register_event_kind(
    "sample_window_end", "scheduler",
    "a sampling window closed (including its post-window drain)",
    ("task", "observed", "usage_us"),
)
VT_UPDATE = register_event_kind(
    "vt_update", "scheduler",
    "a task's virtual time advanced at an engagement episode",
    ("task", "usage_us", "vt", "system_vt"),
)
DENIAL = register_event_kind(
    "denial", "scheduler",
    "a task was denied device access for the upcoming interval",
    ("task", "lag_us"),
)
FREERUN_START = register_event_kind(
    "freerun_start", "scheduler",
    "a disengaged free-run period began for the admitted tasks",
    ("allowed", "denied", "freerun_us"),
)
TOKEN_PASS = register_event_kind(
    "token_pass", "scheduler",
    "the timeslice token passed to a task (its slice begins)",
    ("task", "slice"),
)
OVERUSE_CHARGE = register_event_kind(
    "overuse_charge", "scheduler",
    "excess execution past a slice boundary was charged to the holder",
    ("task", "excess_us"),
)
REQUEST_RELEASED = register_event_kind(
    "request_released", "scheduler",
    "a per-request scheduler released a held request for dispatch",
    ("task",),
)
SHARE_SAMPLE = register_event_kind(
    "share_sample", "scheduler",
    "per-tenant device usage attributed over a scheduling interval "
    "(episode settlement or slice end); feeds the streaming windows",
    ("task", "usage_us", "interval_us"),
)

# ----------------------------------------------------------------------
# Fault-injection / watchdog layer (repro.faults, repro.core.hardening)
# ----------------------------------------------------------------------
FAULT_INJECTED = register_event_kind(
    "fault_injected", "faults",
    "the injector fired a fault spec at a registered injection point",
    ("point",),
)
FAULT_DETECTED = register_event_kind(
    "fault_detected", "faults",
    "the drain watchdog observed a stuck drain it attributes to a task",
    ("task", "waited_us"),
)
WATCHDOG_RETRY = register_event_kind(
    "watchdog_retry", "faults",
    "the watchdog re-drained with a backed-off timeout before acting; "
    "tasks lists the suspects so stall windows attribute per tenant",
    ("attempt", "timeout_us", "tasks"),
)
FAULT_RECOVERED = register_event_kind(
    "fault_recovered", "faults",
    "a detected fault resolved without a kill (retry or degrade action)",
    ("task", "action"),
)
FAULT_ESCALATED = register_event_kind(
    "fault_escalated", "faults",
    "watchdog retries were exhausted (or a runaway attributed): task killed",
    ("task", "reason"),
)

# ----------------------------------------------------------------------
# Streaming-observability layer (repro.obs.windows / repro.obs.slo).
# In fleet runs the monitor stamps an explicit ``device`` payload field
# onto slo.violation/slo.recovered (parsed from the ``name@dN`` tenant
# key) and a ``devices`` list onto window.close, so span/window joins
# never infer devices positionally.  Single-device runs carry neither
# field — their traces stay byte-identical.
# ----------------------------------------------------------------------
WINDOW_CLOSE = register_event_kind(
    "window.close", "obs",
    "a metrics window closed: per-tenant aggregates and Jain's index",
    ("window", "start_us", "end_us", "tenants", "jain"),
)
SLO_VIOLATION = register_event_kind(
    "slo.violation", "obs",
    "an SLO rule entered the violated state at a window close",
    ("rule", "slo_kind", "task", "window", "value", "threshold"),
)
SLO_RECOVERED = register_event_kind(
    "slo.recovered", "obs",
    "a previously violated SLO rule cleared at a window close",
    ("rule", "slo_kind", "task", "window", "violated_windows"),
)

# ----------------------------------------------------------------------
# Fleet layer (repro.fleet: multi-device registry, placement, migration,
# global fair share).  In multi-device runs every event above also
# carries an optional ``device`` payload field (default 0), injected by
# the per-device trace view; single-device runs never add it, so their
# traces are byte-identical with the fleet subsystem merged.
# ----------------------------------------------------------------------
FLEET_PLACE = register_event_kind(
    "fleet.place", "fleet",
    "the placement policy assigned a tenant to a device",
    ("task", "policy"),
)
FLEET_MIGRATE_BEGIN = register_event_kind(
    "fleet.migrate_begin", "fleet",
    "a migration committed at the source device's engagement boundary: "
    "the tenant is parked, drained, and about to be torn down",
    ("task", "src", "dst", "reason"),
)
FLEET_MIGRATE_END = register_event_kind(
    "fleet.migrate_end", "fleet",
    "a migration finished: contexts re-created on the target device and "
    "the charged migration cost landed on the source",
    ("task", "src", "dst", "reason", "cost_us"),
)
FLEET_DEVICE_LOST = register_event_kind(
    "fleet.device_lost", "fleet",
    "a device dropped off the fleet (fleet.device_loss fault): every "
    "tenant on it must migrate to a survivor or be escalated",
    ("tenants",),
)
FLEET_WEIGHT_UPDATE = register_event_kind(
    "fleet.weight_update", "fleet",
    "the global fair-share layer re-weighted a device's local scheduler "
    "at an engagement tick",
    ("policy", "weights"),
)
