"""Trace export and import: JSONL and Chrome trace-event format.

JSONL is the lossless interchange format: a header line describing the
trace, then one record per line.  :func:`read_jsonl` round-trips it back
into a :class:`~repro.sim.trace.TraceRecorder` for the ``repro trace``
subcommands.

Chrome trace-event JSON (:func:`write_chrome_trace`) targets Perfetto /
``chrome://tracing``: instant events for every record, plus synthesized
duration ("X") events for request service times and engagement episodes
so the timeline reads at a glance.  Timestamps are already microseconds —
exactly what the format wants.
"""

from __future__ import annotations

import json
from typing import IO, Optional

from repro.obs import events
from repro.obs import profile as phases
from repro.sim.trace import TraceRecord, TraceRecorder

JSONL_FORMAT = "repro-trace"
JSONL_VERSION = 1


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def write_jsonl(trace: TraceRecorder, stream: IO[str]) -> int:
    """Write a header line plus one line per record; returns record count."""
    first, last = trace.span_us
    header = {
        "format": JSONL_FORMAT,
        "version": JSONL_VERSION,
        "records": len(trace),
        "dropped": trace.dropped,
        "span_us": [first, last],
    }
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    count = 0
    for record in trace.records():
        line = {
            "t": record.time,
            "src": record.source,
            "kind": record.kind,
        }
        if record.payload:
            line["p"] = record.payload
        stream.write(json.dumps(line, sort_keys=True) + "\n")
        count += 1
    return count


def read_jsonl(stream: IO[str]) -> TraceRecorder:
    """Parse a JSONL trace back into an (unbounded) recorder.

    The header's ``dropped`` count is restored so analyses over imported
    traces still know the recording was partial.
    """
    header_line = stream.readline()
    if not header_line.strip():
        raise ValueError("empty trace file")
    header = json.loads(header_line)
    if header.get("format") != JSONL_FORMAT:
        raise ValueError(
            f"not a {JSONL_FORMAT} file (format={header.get('format')!r})"
        )
    if header.get("version") != JSONL_VERSION:
        raise ValueError(f"unsupported trace version {header.get('version')!r}")
    trace = TraceRecorder()
    for raw in stream:
        raw = raw.strip()
        if not raw:
            continue
        line = json.loads(raw)
        trace.append(
            TraceRecord(line["t"], line["src"], line["kind"], line.get("p", {}))
        )
    trace.dropped = int(header.get("dropped", 0))
    return trace


def load_trace(path: str) -> TraceRecorder:
    with open(path, "r", encoding="utf-8") as handle:
        return read_jsonl(handle)


def save_trace(trace: TraceRecorder, path: str) -> int:
    with phases.get_profiler().span(phases.TRACE_EXPORT):
        with open(path, "w", encoding="utf-8") as handle:
            return write_jsonl(trace, handle)


# ----------------------------------------------------------------------
# Chrome trace-event format (Perfetto, chrome://tracing)
# ----------------------------------------------------------------------

#: Synthetic pid/tid layout: one "process" for the run, one "thread" per
#: task plus dedicated scheduler/system rows.
_PID = 1
_TID_SCHEDULER = 1
_TID_SYSTEM = 2
_TID_TASKS_BASE = 10


def _record_task(record: TraceRecord) -> Optional[str]:
    task = record.payload.get("task")
    return task if isinstance(task, str) else None


def chrome_trace_events(trace: TraceRecorder, spans: bool = False) -> list[dict]:
    """Render records into a Chrome trace-event list.

    * every record becomes an instant ("i") event on its task's row
      (scheduler-layer records on the scheduler row, unattributed ones on
      the system row);
    * ``request_complete`` / ``request_aborted`` records with a
      ``service_us`` payload also become duration ("X") slices;
    * ``barrier_begin`` → ``freerun_start`` pairs become "engagement
      episode" slices on the scheduler row;
    * metadata ("M") events name the rows.
    """
    tids: dict[str, int] = {}

    def tid_for(record: TraceRecord) -> int:
        task = _record_task(record)
        if task is not None:
            if task not in tids:
                tids[task] = _TID_TASKS_BASE + len(tids)
            return tids[task]
        spec = events.EVENT_KINDS.get(record.kind)
        if spec is not None and spec.layer == "scheduler":
            return _TID_SCHEDULER
        return _TID_SYSTEM

    out: list[dict] = []
    episode_begin: Optional[TraceRecord] = None
    for record in trace.records():
        tid = tid_for(record)
        out.append({
            "name": record.kind,
            "ph": "i",
            "s": "t",
            "ts": record.time,
            "pid": _PID,
            "tid": tid,
            "cat": record.kind,
            "args": record.payload,
        })
        if record.kind in (events.REQUEST_COMPLETE, events.REQUEST_ABORTED):
            service_us = record.payload.get("service_us")
            if isinstance(service_us, (int, float)) and service_us > 0:
                out.append({
                    "name": f"request {record.payload.get('ref', '?')}",
                    "ph": "X",
                    "ts": record.time - service_us,
                    "dur": service_us,
                    "pid": _PID,
                    "tid": tid,
                    "cat": "request",
                    "args": record.payload,
                })
        elif record.kind == events.BARRIER_BEGIN:
            episode_begin = record
        elif record.kind == events.FREERUN_START and episode_begin is not None:
            out.append({
                "name": "engagement episode",
                "ph": "X",
                "ts": episode_begin.time,
                "dur": record.time - episode_begin.time,
                "pid": _PID,
                "tid": _TID_SCHEDULER,
                "cat": "episode",
                "args": {
                    "episode": episode_begin.payload.get("episode"),
                    "allowed": record.payload.get("allowed"),
                    "denied": record.payload.get("denied"),
                },
            })
            episode_begin = None

    if spans:
        out.extend(_async_span_events(trace, tids))

    metadata = [
        {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
         "args": {"name": "repro simulation"}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_SCHEDULER,
         "args": {"name": "scheduler"}},
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": _TID_SYSTEM,
         "args": {"name": "system"}},
    ]
    for task in sorted(tids):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tids[task],
            "args": {"name": f"task {task}"},
        })
    return metadata + out


def _async_span_events(trace: TraceRecorder, tids: dict[str, int]) -> list[dict]:
    """Reconstructed lifecycle spans as Perfetto async ("b"/"e") events.

    Each request span becomes one async pair on its task's row, with its
    labeled segments nested under the same id so the decomposition reads
    directly off the timeline.  System spans (engagement barriers,
    sampling windows, migrations) land on the scheduler row.
    """
    from repro.obs.spans import build_spans

    span_set = build_spans(trace)
    out: list[dict] = []
    for span in span_set.spans:
        tid = tids.get(span.task, _TID_SYSTEM)
        common = {"cat": "span", "id": span.span_id, "pid": _PID, "tid": tid}
        name = f"request {span.ref if span.ref is not None else '?'}"
        out.append({
            "name": name, "ph": "b", "ts": span.start_us, **common,
            "args": {
                "task": span.task,
                "device": span.device,
                "terminal": span.terminal,
                "components": span.components,
            },
        })
        for segment in span.segments:
            out.append({
                "name": segment.label, "ph": "b", "ts": segment.start_us,
                **common, "args": {},
            })
            out.append({
                "name": segment.label, "ph": "e", "ts": segment.end_us,
                **common,
            })
        out.append({"name": name, "ph": "e", "ts": span.end_us, **common})
    for index, system in enumerate(span_set.system_spans):
        common = {
            "cat": "span", "id": 1_000_000 + index,
            "pid": _PID, "tid": _TID_SCHEDULER,
        }
        out.append({
            "name": system.pair, "ph": "b", "ts": system.start_us,
            **common, "args": system.payload,
        })
        out.append({
            "name": system.pair, "ph": "e", "ts": system.end_us, **common,
        })
    return out


def write_chrome_trace(
    trace: TraceRecorder, stream: IO[str], spans: bool = False
) -> int:
    """Write the Perfetto-loadable JSON object; returns event count.

    The top-level ``metadata`` object carries the recorder's eviction
    counter, so a viewer (or a strict exporter) can tell a complete
    timeline from one whose head fell out of the ring buffer.  With
    ``spans`` true, reconstructed lifecycle spans ride along as async
    events (:mod:`repro.obs.spans`).
    """
    trace_events = chrome_trace_events(trace, spans=spans)
    json.dump(
        {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "metadata": {
                "format": JSONL_FORMAT,
                "records": len(trace),
                "dropped": trace.dropped,
            },
        },
        stream,
        sort_keys=True,
    )
    stream.write("\n")
    return len(trace_events)
