"""Append-only run-record store: the repo's performance trajectory.

Every telemetered experiment run produces one JSON **run record** —
wall-clock totals, host-phase profile, per-cell timings and metric
snapshots, cache effectiveness, and an environment fingerprint — appended
as one line to ``<store-dir>/runs.jsonl`` (default ``.repro/runs/``).
Records accumulate across PRs, so ``repro perf history`` can finally
answer "did this change slow the evaluation down?" and ``repro perf
gate`` can fail a build when it did.

Three design rules keep the store boring and durable:

* **Plain dicts, additive schema.**  A record is JSON all the way down;
  readers ignore unknown fields, writers only ever *add* fields
  (``RECORD_SCHEMA`` bumps only for incompatible changes, which the
  compatibility rule forbids).  Old records stay loadable forever.
* **Skip-and-warn on corruption.**  A crashed run can leave a truncated
  trailing line; :meth:`RunStore.load` skips undecodable lines with a
  warning on stderr instead of poisoning the whole history.
* **No host clock here.**  Timestamps come from
  :func:`repro.obs.profile.unix_now` — the single module neonlint
  whitelists for wall-clock access.

Collection is push-based: the cell farm calls
:meth:`RunCollector.add_cell` for every cell it resolves (computed,
pooled, cache hit, or duplicate) when a collector is installed via
:func:`collecting`; with none installed (the default) the farm pays one
``is None`` check per cell and stdout stays byte-identical to an
untelemetered run.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.obs.profile import PhaseProfiler, unix_now

#: Record schema version.  Bumping this is an incompatible change and is
#: forbidden by the compatibility rule (add fields instead).
RECORD_SCHEMA = 1

#: Default store location, relative to the working directory.
DEFAULT_STORE_DIR = Path(".repro") / "runs"

RUNS_FILENAME = "runs.jsonl"


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------

def _git_sha() -> Optional[str]:
    """Best-effort ``git rev-parse HEAD``; None outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def environment_fingerprint() -> dict[str, Any]:
    """Where a record was produced: stable within one machine + checkout."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
    }


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------

class RunCollector:
    """Accumulates one run's telemetry as the cell farm executes it.

    The farm serializes results itself (it owns the JSON-able form of a
    :class:`WorkloadResult`), so the collector — and the whole store —
    never imports the experiments layer.
    """

    def __init__(self, experiment: str = "") -> None:
        self.experiment = experiment
        self.cells: list[dict[str, Any]] = []
        self.trace_dropped = 0
        self._fault_plans: list[str] = []

    def add_cell(
        self,
        index: int,
        label: str,
        key: Optional[str],
        source: str,
        wall_s: float,
        cached_wall_s: float,
        duration_us: float,
        workloads: dict[str, Any],
        fault_plan: Optional[str] = None,
    ) -> None:
        """One resolved cell: identity, cost, and its metric snapshot."""
        self.cells.append(
            {
                "index": index,
                "label": label,
                "key": key,
                "source": source,
                "wall_s": wall_s,
                "cached_wall_s": cached_wall_s,
                "duration_us": duration_us,
                "workloads": workloads,
            }
        )
        if fault_plan is not None and fault_plan not in self._fault_plans:
            self._fault_plans.append(fault_plan)

    def note_trace_dropped(self, dropped: int) -> None:
        """Ring-buffer evictions seen by this run's trace recorders."""
        self.trace_dropped += int(dropped)

    @property
    def sim_time_us(self) -> float:
        """Total virtual time simulated across computed cells (not reuse)."""
        return sum(
            cell["duration_us"]
            for cell in self.cells
            if cell["source"] in ("run", "pool")
        )

    @property
    def fault_plans(self) -> list[str]:
        return list(self._fault_plans)


#: Module-level active collector; None unless a run installs one.
_ACTIVE: Optional[RunCollector] = None


def active_collector() -> Optional[RunCollector]:
    """The installed collector, or None when telemetry is off."""
    return _ACTIVE


@contextmanager
def collecting(collector: RunCollector) -> Iterator[RunCollector]:
    """Install ``collector`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------

def build_record(
    collector: RunCollector,
    profiler: Optional[PhaseProfiler] = None,
    wall_s: float = 0.0,
    wall_all_s: Optional[list[float]] = None,
    params: Optional[dict[str, Any]] = None,
    cache_hits: int = 0,
    cache_misses: int = 0,
    output_sha256: Optional[str] = None,
    note: Optional[str] = None,
    monitor: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble one JSON-able run record (``run_id`` is assigned on append).

    ``wall_s`` is the min-of-N wall time when the run was repeated
    (``wall_all_s`` keeps every repeat, so noise is inspectable later).

    Cells are sorted by their farm spec index: collection order follows
    pool *completion* order, which varies run to run, but flattened
    paths (``cells.N.…``) address by list position — so the list must be
    in a canonical order for two runs of the same experiment to align.

    ``monitor`` (a :meth:`repro.obs.monitor.MonitorSession.summary` dict)
    is an additive key: absent entirely on unmonitored runs, so gating a
    monitored record against a pre-monitor baseline still works.
    """
    record = {
        "schema": RECORD_SCHEMA,
        "run_id": None,
        "experiment": collector.experiment,
        "unix_time": unix_now(),
        "params": dict(params or {}),
        "env": environment_fingerprint(),
        "wall_s": wall_s,
        "wall_all_s": list(wall_all_s) if wall_all_s is not None else [wall_s],
        "phases": profiler.snapshot() if profiler is not None else {},
        "cells": sorted(collector.cells, key=lambda cell: cell["index"]),
        "sim_time_us": collector.sim_time_us,
        "cache": {"hits": cache_hits, "misses": cache_misses},
        "trace": {"dropped": collector.trace_dropped},
        "fault_plans": collector.fault_plans,
        "output_sha256": output_sha256,
        "note": note,
    }
    if monitor is not None:
        record["monitor"] = monitor
    return record


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class RunStore:
    """Append-only JSONL store of run records under one directory."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else DEFAULT_STORE_DIR
        self.path = self.directory / RUNS_FILENAME

    def load(self, experiment: Optional[str] = None) -> list[dict[str, Any]]:
        """Every readable record, oldest first; corrupt lines skip-and-warn."""
        if not self.path.is_file():
            return []
        records: list[dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError:
                    print(
                        f"warning: {self.path}:{lineno}: skipping corrupt "
                        "run-record line (truncated write?)",
                        file=sys.stderr,
                    )
                    continue
                if not isinstance(record, dict):
                    print(
                        f"warning: {self.path}:{lineno}: skipping non-object "
                        "run-record line",
                        file=sys.stderr,
                    )
                    continue
                if experiment is not None and record.get("experiment") != experiment:
                    continue
                records.append(record)
        return records

    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Assign a ``run_id`` and append the record; returns the record."""
        existing = self.load(experiment=record.get("experiment") or None)
        record = dict(record)
        record["run_id"] = (
            f"{record.get('experiment') or 'run'}-{len(existing) + 1:04d}"
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def resolve(
        self, token: str, experiment: Optional[str] = None
    ) -> dict[str, Any]:
        """A record by run id, ``last``, or (negative) integer index."""
        records = self.load(experiment=experiment)
        if not records:
            raise LookupError(f"no run records in {self.path}")
        if token in ("last", "latest"):
            return records[-1]
        try:
            index = int(token)
        except ValueError:
            for record in records:
                if record.get("run_id") == token:
                    return record
            known = ", ".join(
                str(record.get("run_id")) for record in records[-5:]
            )
            raise LookupError(
                f"no run record {token!r} (most recent: {known})"
            ) from None
        try:
            return records[index]
        except IndexError:
            raise LookupError(
                f"run index {index} out of range ({len(records)} records)"
            ) from None


# ----------------------------------------------------------------------
# Comparison and gating
# ----------------------------------------------------------------------

def flatten_record(record: dict[str, Any], prefix: str = "") -> dict[str, float]:
    """Dotted-path map of every numeric leaf in a record.

    Cells are addressed by index (``cells.0.workloads.t0.metrics.submits``)
    so runs of the same experiment with the same parameters align
    position-for-position.
    """
    flat: dict[str, float] = {}
    if isinstance(record, dict):
        for name in sorted(record):
            path = f"{prefix}.{name}" if prefix else str(name)
            flat.update(flatten_record(record[name], path))
    elif isinstance(record, list):
        for position, item in enumerate(record):
            path = f"{prefix}.{position}" if prefix else str(position)
            flat.update(flatten_record(item, path))
    elif isinstance(record, bool):
        flat[prefix] = 1.0 if record else 0.0
    elif isinstance(record, (int, float)):
        flat[prefix] = float(record)
    return flat


def is_metric_path(path: str) -> bool:
    """Paths gated as simulation metrics (deterministic per seed).

    Everything under ``cells.*`` except the host-side timing fields,
    which vary run to run by construction.
    """
    if not path.startswith("cells."):
        return False
    leaf = path.rsplit(".", 1)[-1]
    return leaf not in ("wall_s", "cached_wall_s", "index")


def _same_value(left: Optional[float], right: Optional[float]) -> bool:
    """Equality where NaN == NaN (short horizons yield NaN round means)."""
    if left is None or right is None:
        return left is right
    if math.isnan(left) and math.isnan(right):
        return True
    return left == right


def compare_records(
    left: dict[str, Any], right: dict[str, Any]
) -> dict[str, tuple[Optional[float], Optional[float]]]:
    """Numeric leaves that differ between two records (wall, phases, metrics).

    Identity fields (``run_id``, timestamps, environment, cache traffic)
    are excluded: they differ between any two runs by construction.
    """
    skip_prefixes = ("env.", "unix_time", "schema", "output_sha256")
    left_flat = flatten_record(left)
    right_flat = flatten_record(right)
    out: dict[str, tuple[Optional[float], Optional[float]]] = {}
    for path in sorted(set(left_flat) | set(right_flat)):
        if path.startswith(skip_prefixes):
            continue
        left_value = left_flat.get(path)
        right_value = right_flat.get(path)
        if not _same_value(left_value, right_value):
            out[path] = (left_value, right_value)
    return out


@dataclass(frozen=True)
class Regression:
    """One gate finding: a path whose drift exceeds its threshold."""

    path: str
    baseline: float
    current: float
    delta_pct: float
    kind: str  # "wall" | "metric"

    def describe(self) -> str:
        return (
            f"{self.kind:6s} {self.path}: "
            f"{self.baseline:g} -> {self.current:g} "
            f"({self.delta_pct:+.1f}%)"
        )


class GateMismatch(Exception):
    """The two records are not comparable (different experiment/params)."""


def _relative_delta_pct(baseline: float, current: float) -> float:
    if math.isnan(baseline) or math.isnan(current):
        # NaN -> NaN is "still undefined", not drift; NaN <-> number is a
        # shape change worth failing on.
        return 0.0 if math.isnan(baseline) and math.isnan(current) else float("inf")
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline) * 100.0


def gate_records(
    current: dict[str, Any],
    baseline: dict[str, Any],
    wall_threshold_pct: float = 20.0,
    metric_threshold_pct: Optional[float] = None,
) -> list[Regression]:
    """Regressions of ``current`` against ``baseline``.

    * **wall** — ``wall_s`` (already min-of-N per record) may only grow by
      ``wall_threshold_pct`` percent; getting *faster* never fails.
    * **metric** — every shared numeric leaf under ``cells.*`` may drift
      by at most ``metric_threshold_pct`` percent in *either* direction
      (simulations are deterministic per seed, so real drift means the
      figure itself moved).  Defaults to the wall threshold.

    Raises :class:`GateMismatch` when the records ran different
    experiments or different simulation parameters — comparing those
    would gate noise, not regressions.
    """
    if metric_threshold_pct is None:
        metric_threshold_pct = wall_threshold_pct
    if current.get("experiment") != baseline.get("experiment"):
        raise GateMismatch(
            f"experiment mismatch: current={current.get('experiment')!r} "
            f"baseline={baseline.get('experiment')!r}"
        )
    for param in ("duration_ms", "seed"):
        current_value = (current.get("params") or {}).get(param)
        baseline_value = (baseline.get("params") or {}).get(param)
        if current_value != baseline_value:
            raise GateMismatch(
                f"param {param!r} mismatch: current={current_value!r} "
                f"baseline={baseline_value!r}"
            )

    regressions: list[Regression] = []
    baseline_wall = baseline.get("wall_s")
    current_wall = current.get("wall_s")
    if isinstance(baseline_wall, (int, float)) and isinstance(
        current_wall, (int, float)
    ) and baseline_wall > 0:
        delta_pct = _relative_delta_pct(baseline_wall, current_wall)
        if delta_pct > wall_threshold_pct:
            regressions.append(
                Regression("wall_s", baseline_wall, current_wall,
                           delta_pct, "wall")
            )

    baseline_flat = flatten_record(baseline)
    current_flat = flatten_record(current)
    for path in sorted(baseline_flat):
        if not is_metric_path(path):
            continue
        if path not in current_flat:
            continue  # additive schema: baselines may trail the code
        delta_pct = _relative_delta_pct(baseline_flat[path], current_flat[path])
        if abs(delta_pct) > metric_threshold_pct:
            regressions.append(
                Regression(path, baseline_flat[path], current_flat[path],
                           delta_pct, "metric")
            )
    return regressions
