"""Observability: typed trace events, metrics, export, and analysis.

The observability layer sits *beside* the simulation, not inside it:

* :mod:`repro.obs.events` — the registry of typed trace event kinds.
  Every ``trace.emit`` call site in the package names a registered
  constant (enforced by neonlint rules NEON401/NEON402).
* :mod:`repro.obs.metrics` — per-task / per-scheduler counters and
  histograms (:class:`MetricsRegistry`), snapshotted into experiment
  results.
* :mod:`repro.obs.engagement` — per-task engaged vs. disengaged time
  accounting, fed by the interception layer's page flips.
* :mod:`repro.obs.export` — JSONL and Chrome trace-event (Perfetto)
  export/import.
* :mod:`repro.obs.overhead` — reconstructs the paper's engagement
  overhead breakdown (drain wait / sampling / other engagement /
  free-run) from a trace alone.
* :mod:`repro.obs.summary` — per-task trace summaries and trace diffs.
* :mod:`repro.obs.profile` — host-phase wall-time profiler (the single
  neonlint-whitelisted host-clock owner besides the cell farm).
* :mod:`repro.obs.store` — append-only cross-run record store
  (``repro perf``: record / history / compare / gate).
* :mod:`repro.obs.windows` — streaming tumbling/sliding windows of
  per-tenant metrics over the live trace stream (shares, engaged time,
  throughput, fixed-bin latency quantiles, per-window Jain index).
* :mod:`repro.obs.slo` — declarative SLO rules evaluated at window
  close (starvation, fairness floor, tail latency, overuse budget).
* :mod:`repro.obs.monitor` — glue + the ``repro monitor`` subcommand
  (NOT imported here: it is imported by the experiments layer, which
  the core schedulers must never transitively reach).
* :mod:`repro.obs.cli` — the ``repro trace`` subcommand.
* :mod:`repro.obs.perf` — the ``repro perf`` subcommand.

Nothing here imports :mod:`repro.gpu` or :mod:`repro.osmodel`: analyses
operate on recorded traces and snapshots, never on live ground truth.
"""

from repro.obs.engagement import EngagementLedger
from repro.obs.events import EVENT_KINDS, EventKindSpec, registered_kinds
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.profile import NullProfiler, PhaseProfiler, profiling
from repro.obs.slo import SloEngine, SloRule
from repro.obs.store import RunCollector, RunStore, collecting
from repro.obs.windows import WindowAggregator, WindowConfig

__all__ = [
    "WindowAggregator",
    "WindowConfig",
    "SloEngine",
    "SloRule",
    "EVENT_KINDS",
    "EventKindSpec",
    "registered_kinds",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "EngagementLedger",
    "PhaseProfiler",
    "NullProfiler",
    "profiling",
    "RunCollector",
    "RunStore",
    "collecting",
]
