"""Host-phase profiler: wall-time attribution for the orchestration layer.

The simulation itself runs on virtual time and must never touch the host
clock (neonlint NEON201).  The *orchestration* around it — building cell
specs, waiting on pool workers, reading and writing the result cache,
exporting traces, merging results — runs on real CPU and real disks, and
the paper's own evaluation method (measure scheduler overhead precisely,
then argue it away) applies to the repro harness too: if ``repro all``
gets slower, we want to know *which host phase* ate the time.

A :class:`PhaseProfiler` hands out :meth:`span` context managers that
attribute elapsed wall time to named phases::

    profiler = PhaseProfiler()
    with profiler.span(CELL_EXECUTE):
        results = spec.run()
    profiler.snapshot()  # {"cell-execute": {"count": 1, "total_s": ...}}

By default the module-level profiler is a :class:`NullProfiler` whose
spans are a shared no-op object — no clock reads, no allocation, nothing
for an untelemetered run to pay for.  ``repro perf record`` installs a
real profiler for the duration of a run via :func:`profiling`.

This module is the **only** non-farm module whitelisted for host-clock
access (``host_clock_modules`` in neonlint's config).  Everything else
that needs a host timestamp — the run-record store, the progress
renderer — imports :func:`host_clock` / :func:`unix_now` from here so
the exemption stays a single audited point.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

#: Canonical phase names used by the cell farm and the figure drivers.
#: Free-form names are allowed; these keep cross-run records comparable.
SPEC_BUILD = "spec-build"
CELL_EXECUTE = "cell-execute"
CACHE_READ = "cache-read"
CACHE_WRITE = "cache-write"
TRACE_EXPORT = "trace-export"
RESULT_MERGE = "result-merge"

PHASES = (
    SPEC_BUILD,
    CELL_EXECUTE,
    CACHE_READ,
    CACHE_WRITE,
    TRACE_EXPORT,
    RESULT_MERGE,
)


def host_clock() -> float:
    """Monotonic host seconds (``time.perf_counter``).

    The sanctioned wall-clock accessor for host-side orchestration code
    that is *not* in ``host_clock_modules``: call this instead of
    referencing ``time.perf_counter`` directly so neonlint keeps the
    exemption surface at exactly one module.
    """
    return time.perf_counter()


def unix_now() -> float:
    """Seconds since the epoch (``time.time``) for run-record stamps."""
    return time.time()


class _Span:
    """One active measurement; reusable as a context manager."""

    __slots__ = ("profiler", "phase", "started")

    def __init__(self, profiler: "PhaseProfiler", phase: str) -> None:
        self.profiler = profiler
        self.phase = phase
        self.started = 0.0

    def __enter__(self) -> "_Span":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.profiler._record(self.phase, time.perf_counter() - self.started)


class _NullSpan:
    """Shared do-nothing span: no clock reads when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class PhaseProfiler:
    """Aggregates wall time per named phase.

    Phases are additive: overlapping spans of the same phase double-count
    (callers should not nest a phase inside itself).  Totals are plain
    floats keyed by phase name; :meth:`snapshot` renders them sorted so
    persisted records are deterministic in shape.
    """

    #: Real profilers measure; the null profiler advertises False so hot
    #: paths can skip even the span-object handshake.
    enabled = True

    def __init__(self) -> None:
        self._total_s: dict[str, float] = {}
        self._count: dict[str, int] = {}

    def span(self, phase: str) -> _Span:
        """A context manager charging its elapsed wall time to ``phase``."""
        return _Span(self, phase)

    def _record(self, phase: str, elapsed_s: float) -> None:
        self._total_s[phase] = self._total_s.get(phase, 0.0) + elapsed_s
        self._count[phase] = self._count.get(phase, 0) + 1

    def add(self, phase: str, elapsed_s: float) -> None:
        """Charge an externally measured duration to ``phase``."""
        self._record(phase, elapsed_s)

    def total_s(self, phase: str) -> float:
        return self._total_s.get(phase, 0.0)

    def count(self, phase: str) -> int:
        return self._count.get(phase, 0)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{phase: {"count": n, "total_s": seconds}}``, sorted by phase."""
        return {
            phase: {
                "count": self._count[phase],
                "total_s": self._total_s[phase],
            }
            for phase in sorted(self._total_s)
        }


class NullProfiler(PhaseProfiler):
    """The default: every span is the shared no-op, nothing is recorded."""

    enabled = False

    def span(self, phase: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def add(self, phase: str, elapsed_s: float) -> None:
        return None


#: Module-level active profiler; NullProfiler unless a run installs one.
_ACTIVE: PhaseProfiler = NullProfiler()


def get_profiler() -> PhaseProfiler:
    """The currently installed profiler (the null profiler by default)."""
    return _ACTIVE


@contextmanager
def profiling(profiler: Optional[PhaseProfiler] = None) -> Iterator[PhaseProfiler]:
    """Install ``profiler`` (or a fresh one) for the duration of the block."""
    global _ACTIVE
    if profiler is None:
        profiler = PhaseProfiler()
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous
