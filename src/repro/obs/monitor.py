"""Live monitoring: streaming windows + SLO rules over running simulations.

Glue between the pure aggregation layers and the rest of the system:

* :class:`Monitor` — one run's monitoring rig: a ``retain=False``
  :class:`~repro.sim.trace.TraceRecorder` (pure stream fan-out, so
  unbounded horizons cost no memory), a
  :class:`~repro.obs.windows.WindowAggregator` subscribed as a live
  sink, an :class:`~repro.obs.slo.SloEngine` evaluated at every window
  close, and a :class:`~repro.obs.metrics.MetricsRegistry` the
  simulation shares.  Window closes and SLO transitions are emitted
  *back into the trace* as registered kinds (``window.close``,
  ``slo.violation``, ``slo.recovered``) and bumped as counters
  (``windows_closed``, ``slo_violations``, ``slo_recoveries``).
* :class:`MonitorSession` — installs monitoring for a whole CLI
  invocation via :func:`monitoring`; the experiment runner asks
  :func:`active_monitor` per run (one ``is None`` check when off, so
  monitor-off runs stay byte-identical), and the cell farm runs
  serially under a session (module-level hooks do not survive a
  process-pool boundary).
* the ``repro monitor`` CLI — run any experiment or an inline
  simulation with ``--window-us`` windows, live per-window stderr
  rendering (through the ``--progress`` ticker when installed), a JSON
  report, and optional persistence into the run-record store as the
  additive ``monitor`` key.

The monitored experiment's stdout tables stay byte-identical to the
unmonitored run: every monitor line goes to stderr, the report to a
file.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.obs import events
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloEvent, SloRule, load_rules
from repro.obs.windows import WindowAggregator, WindowConfig, WindowSnapshot
from repro.sim.trace import TraceRecorder

#: Default window width for the CLI (µs).
DEFAULT_WINDOW_US = 5_000.0


def _tenant_device(tenant: Optional[str]) -> Optional[int]:
    """Device id from a fleet tenant key (``name@dN``), else None.

    Single-device runs never produce suffixed keys, so their monitor
    events carry no device field and stay byte-identical.
    """
    if not tenant:
        return None
    _name, sep, suffix = tenant.rpartition("@d")
    if sep and suffix.isdigit():
        return int(suffix)
    return None


class Monitor:
    """One run's monitoring rig; see the module docstring."""

    def __init__(
        self,
        window: WindowConfig,
        rules: Sequence[SloRule] = (),
        label: str = "",
        line_sink: Optional[Callable[[str], None]] = None,
        render_windows: bool = True,
        keep_snapshots: Optional[int] = None,
    ) -> None:
        self.label = label
        self.line_sink = line_sink
        self.render_windows = render_windows
        self.trace = TraceRecorder(retain=False)
        self.metrics = MetricsRegistry()
        self.aggregator = WindowAggregator(window)
        self.aggregator.keep_snapshots = keep_snapshots
        self.engine = SloEngine(rules)
        self.slo_events: list[SloEvent] = []
        self.aggregator.on_window(self._window_closed)
        self.trace.add_sink(self.aggregator)
        # Back-reference the runner uses to finalize before snapshotting
        # metrics (duck-typed: the runner must not import this module).
        self.trace.monitor = self

    # -- window-close fan-out ------------------------------------------
    def _window_closed(self, snapshot: WindowSnapshot) -> None:
        self.metrics.inc("windows_closed")
        trace = self.trace
        devices = sorted({
            device
            for tenant in snapshot.tenants
            if (device := _tenant_device(tenant)) is not None
        })
        window_extra: dict[str, Any] = {"devices": devices} if devices else {}
        trace.emit(
            snapshot.end_us, "monitor", events.WINDOW_CLOSE,
            window=snapshot.index,
            start_us=snapshot.start_us,
            end_us=snapshot.end_us,
            tenants=len(snapshot.tenants),
            jain=None if math.isnan(snapshot.jain) else snapshot.jain,
            **window_extra,
        )
        transitions = self.engine.observe(snapshot)
        for event in transitions:
            self.slo_events.append(event)
            violated = event.event == "violation"
            self.metrics.inc(
                "slo_violations" if violated else "slo_recoveries",
                event.task,
            )
            device = _tenant_device(event.task)
            slo_extra: dict[str, Any] = (
                {"device": device} if device is not None else {}
            )
            trace.emit(
                snapshot.end_us, "monitor",
                events.SLO_VIOLATION if violated else events.SLO_RECOVERED,
                rule=event.rule, slo_kind=event.slo_kind, task=event.task,
                window=event.window, value=event.value,
                threshold=event.threshold,
                violated_windows=event.violated_windows,
                **slo_extra,
            )
        if self.line_sink is not None:
            if self.render_windows:
                self.line_sink(format_window_line(snapshot, self.label))
            for event in transitions:
                self.line_sink(format_slo_line(event, self.label))

    def finalize(self, end_us: Optional[float] = None) -> None:
        """Close the final (possibly partial) window; idempotent."""
        if end_us is None:
            # Safety net for aborted runs: flush whole buckets only.
            end_us = self.aggregator._bucket.start_us
        self.aggregator.finish(end_us)

    @property
    def violations(self) -> int:
        return self.engine.violations

    @property
    def recoveries(self) -> int:
        return self.engine.recoveries

    def report(self) -> dict[str, Any]:
        """JSON-able summary of everything this monitor observed."""
        return {
            "label": self.label,
            "windows_closed": self.aggregator.windows_closed,
            "violations": self.violations,
            "recoveries": self.recoveries,
            "active_violations": [
                {"rule": rule, "task": task}
                for rule, task in self.engine.active_violations
            ],
            "slo_events": [event.to_dict() for event in self.slo_events],
            "windows": [
                snapshot.to_dict() for snapshot in self.aggregator.snapshots
            ],
        }


# ----------------------------------------------------------------------
# Line rendering (stderr; reuses the --progress ticker when installed)
# ----------------------------------------------------------------------

def format_window_line(snapshot: WindowSnapshot, label: str = "") -> str:
    jain = "-" if math.isnan(snapshot.jain) else f"{snapshot.jain:.3f}"
    parts = [
        f"window {snapshot.index:>4d}",
        f"{snapshot.start_us / 1000.0:.1f}-{snapshot.end_us / 1000.0:.1f}ms",
        f"jain={jain}",
    ]
    shown = 0
    for name in sorted(snapshot.tenants):
        latency = snapshot.tenants[name].latency
        if latency is None or not latency.count:
            continue
        if shown >= 4:
            parts.append("...")
            break
        parts.append(f"p99[{name}]={latency.quantile(0.99):.0f}us")
        shown += 1
    prefix = f"[{label}] " if label else ""
    return prefix + " ".join(parts)


def format_slo_line(event: SloEvent, label: str = "") -> str:
    prefix = f"[{label}] " if label else ""
    verb = "SLO VIOLATION" if event.event == "violation" else "SLO recovered"
    subject = event.task or "<window>"
    return (
        f"{prefix}{verb} {event.slo_kind} rule={event.rule} task={subject} "
        f"window={event.window} value={event.value:g} "
        f"threshold={event.threshold:g}"
    )


# ----------------------------------------------------------------------
# Session: monitoring across a whole invocation
# ----------------------------------------------------------------------

class MonitorSession:
    """Monitoring configuration + accumulated per-run reports.

    Installed with :func:`monitoring`; the experiment runner calls
    :meth:`begin_run` for every simulation it builds while the session
    is active and :meth:`end_run` when it finishes.
    """

    def __init__(
        self,
        window: WindowConfig,
        rules: Sequence[SloRule] = (),
        line_sink: Optional[Callable[[str], None]] = None,
        render_windows: bool = True,
        keep_snapshots: Optional[int] = None,
        record_stream: Optional[TraceRecorder] = None,
    ) -> None:
        self.window = window
        self.rules = tuple(rules)
        self.line_sink = line_sink
        self.render_windows = render_windows
        self.keep_snapshots = keep_snapshots
        #: Optional retaining tee of every monitored run's full stream
        #: (simulation records plus monitor-emitted window/SLO events),
        #: exported by ``--trace-out`` for offline span reconstruction.
        self.record_stream = record_stream
        self.monitors: list[Monitor] = []
        self.reused: list[dict[str, str]] = []
        # Label the cell farm announces for the next run (one-shot).
        self._next_label: Optional[str] = None

    def begin_cell(self, label: str) -> None:
        """The cell farm is about to execute a cell with this label."""
        self._next_label = label

    def cell_reused(self, label: str, source: str) -> None:
        """A cell resolved from cache/dedup: no fresh run to monitor."""
        self.reused.append({"label": label, "source": source})

    def begin_run(self, label: Optional[str] = None) -> Monitor:
        if label is None:
            label = self._next_label or f"run-{len(self.monitors) + 1}"
        self._next_label = None
        monitor = Monitor(
            self.window, self.rules, label=label,
            line_sink=self.line_sink,
            render_windows=self.render_windows,
            keep_snapshots=self.keep_snapshots,
        )
        if self.record_stream is not None:
            monitor.trace.add_sink(self.record_stream.append)
        self.monitors.append(monitor)
        return monitor

    def end_run(self, monitor: Monitor) -> None:
        monitor.finalize()

    @property
    def violations(self) -> int:
        return sum(monitor.violations for monitor in self.monitors)

    @property
    def recoveries(self) -> int:
        return sum(monitor.recoveries for monitor in self.monitors)

    @property
    def windows_closed(self) -> int:
        return sum(
            monitor.aggregator.windows_closed for monitor in self.monitors
        )

    def report(self) -> dict[str, Any]:
        return {
            "window_us": self.window.window_us,
            "slide_us": self.window.effective_slide_us,
            "latency_bin_us": self.window.latency_bin_us,
            "rules": [rule.to_dict() for rule in self.rules],
            "windows_closed": self.windows_closed,
            "violations": self.violations,
            "recoveries": self.recoveries,
            "reused_cells": list(self.reused),
            "runs": [monitor.report() for monitor in self.monitors],
        }

    def summary(self) -> dict[str, Any]:
        """Compact form persisted into run records (additive ``monitor``
        key): totals only, windows elided."""
        return {
            "window_us": self.window.window_us,
            "slide_us": self.window.effective_slide_us,
            "rules": [rule.to_dict() for rule in self.rules],
            "windows_closed": self.windows_closed,
            "violations": self.violations,
            "recoveries": self.recoveries,
            "runs": len(self.monitors),
            "reused_cells": len(self.reused),
        }


#: Module-level active session; None unless ``repro monitor`` installs one.
_ACTIVE: Optional[MonitorSession] = None


def active_monitor() -> Optional[MonitorSession]:
    """The installed monitoring session, or None when monitoring is off."""
    return _ACTIVE


@contextmanager
def monitoring(session: MonitorSession) -> Iterator[MonitorSession]:
    """Install ``session`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# The ``repro monitor`` CLI
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro monitor",
        description=(
            "Run an experiment (or an inline simulation) with streaming "
            "windowed metrics and SLO monitors over the live trace stream."
        ),
    )
    parser.add_argument(
        "target",
        help="experiment name (as in 'repro list'), 'run' for an inline "
        "simulation, or 'rules' to list the SLO rule kinds",
    )
    windowing = parser.add_argument_group("windowing")
    windowing.add_argument(
        "--window-us", type=float, default=DEFAULT_WINDOW_US,
        help=f"window width in microseconds (default: {DEFAULT_WINDOW_US:g})",
    )
    windowing.add_argument(
        "--slide-us", type=float, default=None,
        help="slide in microseconds for sliding windows (default: tumbling; "
        "the window must be an integer multiple of the slide)",
    )
    windowing.add_argument(
        "--latency-bin-us", type=float, default=50.0,
        help="fixed latency bin width for deterministic quantiles "
        "(default: 50)",
    )
    slo = parser.add_argument_group("SLO rules")
    slo.add_argument(
        "--slo", metavar="FILE", default=None,
        help="JSON rule file (a list of rules, or {\"rules\": [...]})",
    )
    slo.add_argument(
        "--slo-p99-us", type=float, default=None, metavar="US",
        help="tail-latency ceiling: violate when a tenant's windowed p99 "
        "exceeds this many microseconds",
    )
    slo.add_argument(
        "--slo-jain-floor", type=float, default=None, metavar="J",
        help="fairness floor: violate when a window's Jain index drops "
        "below this",
    )
    slo.add_argument(
        "--slo-starvation-us", type=float, default=None, metavar="US",
        help="starvation: violate when a tenant shows demand but "
        "completes nothing and is attributed at most this many us of share",
    )
    slo.add_argument(
        "--slo-overuse-us", type=float, default=None, metavar="US",
        help="overuse budget: violate when a tenant is charged more "
        "overuse than this per window (watchdog escalations also count)",
    )
    slo.add_argument(
        "--slo-for-windows", type=int, default=1, metavar="N",
        help="consecutive violating windows before inline rules fire "
        "(default: 1)",
    )
    output = parser.add_argument_group("output")
    output.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the full JSON report (windows + SLO events) here",
    )
    output.add_argument(
        "--fail-on-violation", action="store_true",
        help="exit nonzero when any SLO violation fired",
    )
    output.add_argument(
        "--quiet", action="store_true",
        help="suppress per-window stderr lines (SLO transitions still "
        "print)",
    )
    output.add_argument(
        "--progress", action="store_true",
        help="cell-farm progress ticker on stderr; monitor lines render "
        "through it",
    )
    output.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="export the monitored trace stream (all runs, including the "
        "monitor's own window/SLO records) as JSONL; feed it to "
        "'repro why FILE --report ...' for root-cause attribution",
    )
    output.add_argument(
        "--keep-windows", type=int, default=None, metavar="N",
        help="retain at most N window snapshots per run in memory and in "
        "the report (default: all)",
    )
    store = parser.add_argument_group("run-record store")
    store.add_argument(
        "--store", action="store_true",
        help="append a run record (with the additive 'monitor' summary "
        "key) to the run store",
    )
    store.add_argument(
        "--store-dir", type=Path, default=None,
        help="store directory (default: .repro/runs)",
    )
    store.add_argument("--note", default=None, help="note saved in the record")
    run = parser.add_argument_group("simulation (experiment and 'run' mode)")
    run.add_argument(
        "--duration-ms", type=float, default=None,
        help="simulated duration per run in milliseconds "
        "(default: per-experiment)",
    )
    run.add_argument("--seed", type=int, default=0, help="root RNG seed")
    run.add_argument(
        "--scheduler", default="dfq",
        help="'run' mode: scheduler to run (default: dfq)",
    )
    run.add_argument(
        "--apps", default="glxgears,BitonicSort",
        help="'run' mode: comma-separated Table 1 app names",
    )
    run.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="'run' mode: JSON fault plan to install",
    )
    run.add_argument(
        "--chaos", default=None, metavar="PLAN",
        help="'run' mode: builtin chaos plan name (victim + bystander mix "
        "under chaos costs; see 'repro chaos plans')",
    )
    return parser


def rules_from_args(args: argparse.Namespace) -> list[SloRule]:
    rules: list[SloRule] = []
    if args.slo is not None:
        rules.extend(load_rules(Path(args.slo)))
    hold = args.slo_for_windows
    if args.slo_p99_us is not None:
        rules.append(SloRule(
            "p99-ceiling", "tail_latency", args.slo_p99_us,
            for_windows=hold, quantile=0.99,
        ))
    if args.slo_jain_floor is not None:
        rules.append(SloRule(
            "jain-floor", "fairness_floor", args.slo_jain_floor,
            for_windows=hold,
        ))
    if args.slo_starvation_us is not None:
        rules.append(SloRule(
            "starvation", "starvation", args.slo_starvation_us,
            for_windows=hold,
        ))
    if args.slo_overuse_us is not None:
        rules.append(SloRule(
            "overuse-budget", "overuse_budget", args.slo_overuse_us,
            for_windows=hold, max_escalations=0,
        ))
    return rules


def _line_sink(line: str) -> None:
    """Stderr renderer; routes through the --progress ticker when one is
    installed so in-place TTY status lines are not corrupted."""
    from repro.experiments.progress import active_progress

    progress = active_progress()
    if progress is not None:
        progress.note(line)
    else:
        print(line, file=sys.stderr)


def session_from_args(args: argparse.Namespace) -> MonitorSession:
    window = WindowConfig(
        window_us=args.window_us,
        slide_us=args.slide_us,
        latency_bin_us=args.latency_bin_us,
    )
    record_stream = (
        TraceRecorder() if getattr(args, "trace_out", None) is not None
        else None
    )
    return MonitorSession(
        window,
        rules_from_args(args),
        line_sink=_line_sink,
        render_windows=not args.quiet,
        keep_snapshots=args.keep_windows,
        record_stream=record_stream,
    )


def cmd_rules(_args: argparse.Namespace) -> int:
    descriptions = {
        "starvation": (
            "tenant shows demand (submits/faults/denials) but completes "
            "nothing and receives <= threshold us of share"
        ),
        "fairness_floor": "window Jain index over tenant shares < threshold",
        "tail_latency": (
            "tenant's windowed latency quantile > threshold us"
        ),
        "overuse_budget": (
            "tenant charged > threshold us overuse per window, or exceeds "
            "the escalation budget (max_escalations)"
        ),
    }
    for kind, description in descriptions.items():
        print(f"{kind:16s} {description}")
    print()
    print("rule schema: {name, kind, threshold, for_windows?, quantile?, "
          "max_escalations?}")
    return 0


def _run_inline(args: argparse.Namespace, session: MonitorSession) -> None:
    """'run' mode: one monitored simulation, no table output."""
    from dataclasses import replace

    if args.chaos is not None:
        from repro.experiments.chaos import builtin_plans, chaos_cell

        catalog = builtin_plans()
        if args.chaos not in catalog:
            known = ", ".join(sorted(catalog))
            raise KeyError(
                f"unknown chaos plan {args.chaos!r}; known: {known}"
            )
        spec = chaos_cell(catalog[args.chaos], args.scheduler, seed=args.seed)
        if args.duration_ms is not None:
            spec = replace(spec, duration_us=args.duration_ms * 1000.0)
    else:
        from repro.experiments.cells import CellSpec, WorkloadSpec
        from repro.experiments.runner import (
            DEFAULT_DURATION_US,
            DEFAULT_WARMUP_US,
        )

        fault_plan = None
        if args.fault_plan is not None:
            from repro.faults.plan import FaultPlan

            fault_plan = FaultPlan.load(args.fault_plan)
        names = [name.strip() for name in args.apps.split(",") if name.strip()]
        if not names:
            raise ValueError("--apps needs at least one application name")
        counts: dict[str, int] = {}
        workloads = []
        for name in names:
            seen = counts.get(name, 0)
            counts[name] = seen + 1
            instance = None if seen == 0 else f"{name}.{seen + 1}"
            workloads.append(WorkloadSpec.app(name, instance=instance))
        duration_us = (
            args.duration_ms * 1000.0 if args.duration_ms is not None
            else DEFAULT_DURATION_US
        )
        spec = CellSpec(
            scheduler=args.scheduler,
            workloads=tuple(workloads),
            duration_us=duration_us,
            warmup_us=min(DEFAULT_WARMUP_US, duration_us / 4),
            seed=args.seed,
            fault_plan=fault_plan,
        )
    session.begin_cell(spec.label())
    spec.run()


def _run_experiment(args: argparse.Namespace, session: MonitorSession) -> None:
    """Experiment mode: stdout mirrors ``repro <name>`` byte-for-byte."""
    from repro.cli import EXPERIMENTS, _call_experiment
    from repro.experiments.parallel import CellTiming, format_cell_timings

    runner, _description = EXPERIMENTS[args.target]
    print(f"== {args.target} ==")
    timings: list[CellTiming] = []
    # Monitored cells always run serially in this process (the cell farm
    # refuses to pool them), so the farm parameter is fixed at 1.
    args.workers = 1
    # cache=None: a monitored run must execute every cell to observe it.
    _call_experiment(runner, args, cache=None, timings=timings)
    if timings:
        print(
            f"[{args.target}] {format_cell_timings(timings)}", file=sys.stderr
        )
    print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "rules":
        return cmd_rules(args)
    if args.target != "run":
        from repro.cli import EXPERIMENTS

        if args.target not in EXPERIMENTS:
            known = ", ".join(EXPERIMENTS)
            print(
                f"unknown target {args.target!r}; expected 'run', 'rules', "
                f"or an experiment ({known})",
                file=sys.stderr,
            )
            return 2

    session = session_from_args(args)
    collector = None
    profiler = None
    started = None
    with ExitStack() as stack:
        if args.progress:
            from repro.experiments.progress import CellProgress, progressing

            stack.enter_context(progressing(CellProgress()))
        if args.store:
            from repro.obs.profile import PhaseProfiler, host_clock, profiling
            from repro.obs.store import RunCollector, collecting

            collector = RunCollector(
                args.target if args.target != "run" else "monitor-run"
            )
            profiler = PhaseProfiler()
            stack.enter_context(collecting(collector))
            stack.enter_context(profiling(profiler))
            started = host_clock()
        stack.enter_context(monitoring(session))
        if args.target == "run":
            _run_inline(args, session)
        else:
            _run_experiment(args, session)

    print(
        f"monitor: {session.windows_closed} windows, "
        f"{session.violations} violations, "
        f"{session.recoveries} recoveries "
        f"across {len(session.monitors)} runs",
        file=sys.stderr,
    )
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(session.report(), indent=2, sort_keys=True) + "\n"
        )
        print(f"monitor: report written to {args.report}", file=sys.stderr)
    if args.trace_out is not None and session.record_stream is not None:
        from repro.obs.export import save_trace

        count = save_trace(session.record_stream, args.trace_out)
        print(
            f"monitor: {count} trace records written to {args.trace_out}",
            file=sys.stderr,
        )
    if args.store and collector is not None:
        from repro.obs.profile import host_clock
        from repro.obs.store import RunStore, build_record

        wall = host_clock() - started if started is not None else 0.0
        record = build_record(
            collector,
            profiler,
            wall_s=wall,
            params={
                "duration_ms": args.duration_ms,
                "seed": args.seed,
                "window_us": args.window_us,
            },
            note=args.note,
            monitor=session.summary(),
        )
        stored = RunStore(args.store_dir).append(record)
        print(
            f"monitor: run record {stored['run_id']} appended",
            file=sys.stderr,
        )
    if args.fail_on_violation and session.violations:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
