"""Streaming windowed metrics over the trace stream.

A :class:`WindowAggregator` subscribes to a :class:`~repro.sim.trace.
TraceRecorder` as a live sink (:meth:`TraceRecorder.add_sink`) and
maintains incremental per-tenant aggregates over tumbling or sliding
time windows:

* device shares — integrated from ``share_sample`` events the schedulers
  emit at engagement boundaries (episode settlement, slice end);
* engaged / disengaged channel-time — integrated from the interception
  layer's ``channel_engaged`` / ``channel_disengaged`` flips with a
  per-window mini-ledger (same settle-on-flip scheme as
  :class:`~repro.obs.engagement.EngagementLedger`);
* completion throughput and service time — from ``request_complete``;
* deterministic fixed-bin latency quantiles (p50/p95/p99) — from the
  ``latency_us`` payload, binned by :class:`FixedBinLatency`;
* per-window Jain's fairness index — reusing
  :func:`repro.metrics.fairness.jain_index` over the tenants' shares.

Windows are built from *slide*-width buckets kept in a bounded deque
(``window / slide`` of them), so memory is O(tenants × window/slide)
regardless of run length: ring-buffer eviction in the recorder never
affects window aggregates because sinks see the full stream.

Everything here is deterministic and import-free with respect to the
simulation: the aggregator consumes :class:`TraceRecord` values only, so
the same records produce bit-identical windows whether delivered live or
replayed from a buffer (see :func:`aggregate_trace` and the
streaming-sink equivalence tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.metrics.fairness import jain_index
from repro.obs import events
from repro.sim.trace import TraceRecord

#: Latency quantiles every window reports.
REPORT_QUANTILES = (0.50, 0.95, 0.99)


def tenant_key(payload: dict) -> str:
    """Window/SLO tenant key for a record's payload.

    Single-device runs carry no ``device`` field and key tenants by bare
    task name — unchanged byte-for-byte.  Fleet runs tag every record
    with a device id (:class:`~repro.sim.trace.DeviceTraceView`), and the
    same task name on different devices aggregates separately as
    ``name@dN`` (a migrated tenant's service is attributed per device).
    """
    task = payload["task"]
    device = payload.get("device")
    if device is None:
        return task
    return f"{task}@d{device}"


@dataclass(frozen=True)
class WindowConfig:
    """Shape of the streaming windows.

    ``slide_us is None`` gives tumbling windows (slide == window);
    otherwise the window must be an integer multiple of the slide.
    """

    window_us: float
    slide_us: Optional[float] = None
    #: Fixed latency bin width; quantiles are deterministic to this
    #: resolution (a quantile is the upper edge of its bin).
    latency_bin_us: float = 50.0
    #: Values at or above this go to the overflow bin (reported as the
    #: exact tracked maximum).
    latency_max_us: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise ValueError("window_us must be > 0")
        slide = self.slide_us
        if slide is not None:
            if slide <= 0:
                raise ValueError("slide_us must be > 0")
            ratio = self.window_us / slide
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise ValueError(
                    "window_us must be a positive integer multiple of slide_us"
                )
        if self.latency_bin_us <= 0:
            raise ValueError("latency_bin_us must be > 0")
        if self.latency_max_us < self.latency_bin_us:
            raise ValueError("latency_max_us must be >= latency_bin_us")

    @property
    def effective_slide_us(self) -> float:
        return self.window_us if self.slide_us is None else self.slide_us

    @property
    def buckets_per_window(self) -> int:
        return int(round(self.window_us / self.effective_slide_us))


class FixedBinLatency:
    """Deterministic fixed-width-bin latency distribution.

    Bins are ``[i*bin_us, (i+1)*bin_us)``; a quantile is the *upper edge*
    of the bin holding the ``ceil(q*n)``-th observation, so it
    over-estimates by at most one bin width (the tolerance the tests
    assert against exact sorted quantiles).  Overflow observations
    (``>= max_us``) report the exact tracked maximum instead, so extreme
    tails are never under-stated.  Mergeable, for sliding windows.
    """

    __slots__ = ("bin_us", "max_us", "counts", "count", "total", "min", "max")

    def __init__(self, bin_us: float, max_us: float) -> None:
        self.bin_us = float(bin_us)
        self.max_us = float(max_us)
        self.counts = [0] * (int(math.ceil(max_us / bin_us)) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        index = int(value // self.bin_us)
        if value < 0:
            index = 0
        elif index >= len(self.counts) - 1:
            index = len(self.counts) - 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "FixedBinLatency") -> None:
        if (other.bin_us, other.max_us) != (self.bin_us, self.max_us):
            raise ValueError("cannot merge histograms with different bins")
        for index, bucket in enumerate(other.counts):
            self.counts[index] += bucket
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        rank = max(1, int(math.ceil(q * self.count)))
        seen = 0
        for index, bucket in enumerate(self.counts):
            seen += bucket
            if seen >= rank:
                if index == len(self.counts) - 1:
                    return self.max  # overflow: exact tracked maximum
                return (index + 1) * self.bin_us
        return self.max

    def copy(self) -> "FixedBinLatency":
        out = FixedBinLatency(self.bin_us, self.max_us)
        out.merge(self)
        return out


@dataclass
class TenantWindow:
    """One tenant's aggregates over one bucket (or one merged window)."""

    submits: int = 0
    completions: int = 0
    service_us: float = 0.0
    share_usage_us: float = 0.0
    engaged_us: float = 0.0
    disengaged_us: float = 0.0
    overuse_us: float = 0.0
    faults: int = 0
    denials: int = 0
    escalations: int = 0
    kills: int = 0
    #: Last virtual time observed for the tenant (``vt_update``); not
    #: additive — merged windows keep the most recent value.
    vt: Optional[float] = None
    latency: Optional[FixedBinLatency] = None

    def merge(self, other: "TenantWindow") -> None:
        self.submits += other.submits
        self.completions += other.completions
        self.service_us += other.service_us
        self.share_usage_us += other.share_usage_us
        self.engaged_us += other.engaged_us
        self.disengaged_us += other.disengaged_us
        self.overuse_us += other.overuse_us
        self.faults += other.faults
        self.denials += other.denials
        self.escalations += other.escalations
        self.kills += other.kills
        if other.vt is not None:
            self.vt = other.vt
        if other.latency is not None:
            if self.latency is None:
                self.latency = other.latency.copy()
            else:
                self.latency.merge(other.latency)

    def to_dict(self, span_us: float) -> dict:
        out = {
            "submits": self.submits,
            "completions": self.completions,
            "service_us": self.service_us,
            "share_usage_us": self.share_usage_us,
            "engaged_us": self.engaged_us,
            "disengaged_us": self.disengaged_us,
            "overuse_us": self.overuse_us,
            "faults": self.faults,
            "denials": self.denials,
            "escalations": self.escalations,
            "kills": self.kills,
            "throughput_per_s": (
                self.completions / (span_us / 1e6) if span_us > 0 else 0.0
            ),
        }
        if self.vt is not None:
            out["vt"] = self.vt
        latency = self.latency
        if latency is not None and latency.count:
            out["latency"] = {
                "count": latency.count,
                "mean_us": latency.mean(),
                "p50_us": latency.quantile(0.50),
                "p95_us": latency.quantile(0.95),
                "p99_us": latency.quantile(0.99),
                "max_us": latency.max,
            }
        return out


@dataclass
class _Bucket:
    start_us: float
    end_us: float
    tenants: dict[str, TenantWindow] = field(default_factory=dict)


@dataclass(frozen=True)
class WindowSnapshot:
    """One closed window: merged tenant aggregates plus fairness."""

    index: int
    start_us: float
    end_us: float
    tenants: dict[str, TenantWindow]
    #: Jain's index over the active tenants' shares (NaN when nothing
    #: was attributable this window).
    jain: float
    #: Which per-tenant quantity the Jain computation used.
    share_basis: str
    partial: bool = False

    @property
    def span_us(self) -> float:
        return self.end_us - self.start_us

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "partial": self.partial,
            "jain": None if math.isnan(self.jain) else self.jain,
            "share_basis": self.share_basis,
            "tenants": {
                name: self.tenants[name].to_dict(self.span_us)
                for name in sorted(self.tenants)
            },
        }


@dataclass
class _ChannelLedger:
    task: str
    engaged: bool
    since: float


class WindowAggregator:
    """The live sink: consumes trace records, closes windows on time.

    Register with ``trace.add_sink(aggregator)``; records advance the
    window clock and update the current bucket.  Call :meth:`finish` at
    end of run to flush the final (possibly partial) window.  Closed
    windows are handed to every callback registered via
    :meth:`on_window`.
    """

    def __init__(self, config: WindowConfig, start_us: float = 0.0) -> None:
        self.config = config
        self.start_us = start_us
        slide = config.effective_slide_us
        self._bucket = _Bucket(start_us, start_us + slide)
        self._pending: list[_Bucket] = []
        self._channels: dict[int, _ChannelLedger] = {}
        self._callbacks: list[Callable[[WindowSnapshot], None]] = []
        self.windows_closed = 0
        self.snapshots: list[WindowSnapshot] = []
        #: Retain at most this many closed snapshots (None = unbounded);
        #: long-running monitors cap it to keep memory flat.
        self.keep_snapshots: Optional[int] = None
        self._finished = False

    def on_window(
        self, callback: Callable[[WindowSnapshot], None]
    ) -> Callable[[WindowSnapshot], None]:
        self._callbacks.append(callback)
        return callback

    # -- sink protocol -------------------------------------------------
    def __call__(self, record: TraceRecord) -> None:
        kind = record.kind
        # Never consume our own monitor output (re-entrant emits).
        if kind.startswith("window.") or kind.startswith("slo."):
            return
        self._advance(record.time)
        self._consume(record)

    # -- time machinery ------------------------------------------------
    def _advance(self, now: float) -> None:
        while now >= self._bucket.end_us:
            self._close_bucket(self._bucket.end_us)

    def _close_bucket(self, boundary: float) -> None:
        self._settle_engagement(boundary)
        self._pending.append(self._bucket)
        slide = self.config.effective_slide_us
        self._bucket = _Bucket(boundary, boundary + slide)
        k = self.config.buckets_per_window
        if len(self._pending) > k:
            del self._pending[0]
        if len(self._pending) == k:
            self._emit_window(self._pending, partial=False)

    def _emit_window(self, buckets: list[_Bucket], partial: bool) -> None:
        merged: dict[str, TenantWindow] = {}
        for bucket in buckets:
            for name, stats in bucket.tenants.items():
                into = merged.get(name)
                if into is None:
                    into = merged[name] = TenantWindow()
                into.merge(stats)
        shares = {
            name: stats.share_usage_us
            for name, stats in merged.items()
            if stats.share_usage_us > 0
        }
        basis = "share_usage_us"
        if not shares:
            shares = {
                name: stats.service_us
                for name, stats in merged.items()
                if stats.service_us > 0
            }
            basis = "service_us"
        snapshot = WindowSnapshot(
            index=self.windows_closed,
            start_us=buckets[0].start_us,
            end_us=buckets[-1].end_us,
            tenants=merged,
            jain=jain_index(shares.values()),
            share_basis=basis,
            partial=partial,
        )
        self.windows_closed += 1
        self.snapshots.append(snapshot)
        if (
            self.keep_snapshots is not None
            and len(self.snapshots) > self.keep_snapshots
        ):
            del self.snapshots[0]
        for callback in self._callbacks:
            callback(snapshot)

    def finish(self, end_us: float) -> None:
        """Flush: close every full window up to ``end_us``, then a final
        partial window covering whatever remains.  Idempotent."""
        if self._finished:
            return
        self._finished = True
        self._advance(end_us)
        bucket = self._bucket
        if end_us > bucket.start_us:
            self._settle_engagement(end_us)
            partial = _Bucket(bucket.start_us, end_us, bucket.tenants)
            tail = (self._pending + [partial])[-self.config.buckets_per_window:]
            self._emit_window(tail, partial=True)
        elif self._pending and self.windows_closed == 0:
            # Run shorter than one window: report what we have.
            self._emit_window(list(self._pending), partial=True)

    # -- record dispatch -----------------------------------------------
    def _tenant(self, name: str) -> TenantWindow:
        stats = self._bucket.tenants.get(name)
        if stats is None:
            stats = self._bucket.tenants[name] = TenantWindow()
        return stats

    def _consume(self, record: TraceRecord) -> None:
        kind = record.kind
        payload = record.payload
        if kind == events.REQUEST_COMPLETE:
            stats = self._tenant(tenant_key(payload))
            stats.completions += 1
            stats.service_us += payload.get("service_us", 0.0)
            latency = payload.get("latency_us")
            if latency is not None:
                if stats.latency is None:
                    stats.latency = FixedBinLatency(
                        self.config.latency_bin_us, self.config.latency_max_us
                    )
                stats.latency.observe(latency)
        elif kind == events.REQUEST_SUBMIT:
            self._tenant(tenant_key(payload)).submits += 1
        elif kind == events.SHARE_SAMPLE:
            self._tenant(tenant_key(payload)).share_usage_us += payload[
                "usage_us"
            ]
        elif kind == events.VT_UPDATE:
            self._tenant(tenant_key(payload)).vt = payload.get("vt")
        elif kind == events.OVERUSE_CHARGE:
            self._tenant(tenant_key(payload)).overuse_us += payload.get(
                "excess_us", 0.0
            )
        elif kind == events.FAULT:
            self._tenant(tenant_key(payload)).faults += 1
        elif kind == events.DENIAL:
            self._tenant(tenant_key(payload)).denials += 1
        elif kind == events.FAULT_ESCALATED:
            self._tenant(tenant_key(payload)).escalations += 1
        elif kind == events.TASK_KILLED:
            self._tenant(tenant_key(payload)).kills += 1
        elif kind == events.CHANNEL_ENGAGED:
            self._flip(payload, engaged=True, now=record.time)
        elif kind == events.CHANNEL_DISENGAGED:
            self._flip(payload, engaged=False, now=record.time)
        elif kind == events.TASK_EXIT:
            self._drop_task(tenant_key(payload), record.time)
        # Everything else carries no per-tenant window quantity.

    # -- engagement mini-ledger ----------------------------------------
    def _flip(self, payload: dict, engaged: bool, now: float) -> None:
        channel_id = payload.get("channel")
        if channel_id is None:
            return
        state = self._channels.get(channel_id)
        if state is None:
            self._channels[channel_id] = _ChannelLedger(
                tenant_key(payload), engaged, now
            )
            return
        if state.engaged != engaged:
            self._settle_channel(state, now)
            state.engaged = engaged

    def _settle_channel(self, state: _ChannelLedger, now: float) -> None:
        elapsed = now - state.since
        if elapsed > 0:
            stats = self._tenant(state.task)
            if state.engaged:
                stats.engaged_us += elapsed
            else:
                stats.disengaged_us += elapsed
        state.since = now

    def _settle_engagement(self, boundary: float) -> None:
        # The current bucket is about to close: account every channel's
        # open span into it so spans crossing buckets split correctly.
        for channel_id in sorted(self._channels):
            self._settle_channel(self._channels[channel_id], boundary)

    def _drop_task(self, task: str, now: float) -> None:
        for channel_id in sorted(self._channels):
            state = self._channels[channel_id]
            if state.task == task:
                self._settle_channel(state, now)
                del self._channels[channel_id]


def aggregate_trace(
    records: Iterable[TraceRecord],
    config: WindowConfig,
    start_us: float = 0.0,
    end_us: Optional[float] = None,
) -> list[WindowSnapshot]:
    """Replay recorded (or imported) records through a fresh aggregator.

    Produces exactly the snapshots a live sink would have produced for
    the same stream — the property the streaming-sink equivalence test
    pins.  ``end_us`` defaults to the last record's time.
    """
    aggregator = WindowAggregator(config, start_us=start_us)
    last = start_us
    for record in records:
        aggregator(record)
        last = record.time
    aggregator.finish(last if end_us is None else end_us)
    return aggregator.snapshots
