#!/usr/bin/env python3
"""CI gate: the span layer is pure observation — never a perturbation.

Three comparisons, any mismatch exits 1:

1. **Passivity** — an identical run with a live :class:`SpanBuilder`
   attached as a trace sink must produce ``WorkloadResult``s and a
   trace stream that compare equal, field for field, to the run
   without it (the builder subscribes; it must not steer).
2. **Live == replay** — spans reconstructed incrementally by the live
   sink must serialize byte-identically to spans rebuilt from the
   exported JSONL of the same run (the acceptance property: analysis
   is a pure function of the stream, whichever way the stream arrives).
3. **Eviction independence** — a ring-buffer-capped recorder that has
   evicted most of its records must still yield the same spans through
   its live sink as the uncapped replay, because sinks observe every
   record before eviction (the same guarantee PR-8's windows rely on).
"""

from __future__ import annotations

import io
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import itertools  # noqa: E402

import repro.gpu.channel as channel_module  # noqa: E402
import repro.osmodel.task as task_module  # noqa: E402
from repro.experiments.runner import build_env, run_workloads  # noqa: E402
from repro.obs.export import read_jsonl, write_jsonl  # noqa: E402
from repro.obs.spans import SpanBuilder, build_spans  # noqa: E402
from repro.sim.trace import TraceRecorder  # noqa: E402
from repro.workloads.apps import make_app  # noqa: E402

DURATION_US = 200_000.0
SEED = 0
CAP = 256  # far below this run's record count: forces heavy eviction


def reset_global_ids():
    # Channel/task ids draw from process-global counters; every leg
    # starts from the same state, as two fresh CLI invocations would.
    channel_module._channel_ids = itertools.count(1)
    task_module._task_ids = itertools.count(1)


def traced_run(trace):
    reset_global_ids()
    env = build_env("dfq", seed=SEED, trace=trace)
    results = run_workloads(
        env,
        [make_app("glxgears"), make_app("BitonicSort")],
        duration_us=DURATION_US,
    )
    return env, results


def canonical(span_set):
    return json.dumps(span_set.to_dict(), sort_keys=True)


def fail(message: str) -> None:
    print(f"spans identity gate FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    # Leg 1: no span machinery anywhere near the run.
    plain_trace = TraceRecorder()
    _, plain_results = traced_run(plain_trace)

    # Leg 2: same run with a live builder subscribed.
    live_trace = TraceRecorder()
    builder = SpanBuilder()
    live_trace.add_sink(builder)
    env, live_results = traced_run(live_trace)

    if sorted(plain_results) != sorted(live_results):
        fail("task sets differ with a span sink attached")
    for name in plain_results:
        if plain_results[name] != live_results[name]:
            fail(f"result for {name!r} changed with a span sink attached:\n"
                 f"  off: {plain_results[name]}\n  on:  {live_results[name]}")
    plain_records = list(plain_trace.records())
    live_records = list(live_trace.records())
    if plain_records != live_records:
        fail("trace stream changed with a span sink attached")

    # Live vs replay over the identical stream.
    live_set = builder.finish(env.sim.now)
    buffer = io.StringIO()
    write_jsonl(live_trace, buffer)
    buffer.seek(0)
    replay_set = build_spans(read_jsonl(buffer), env.sim.now)
    if canonical(live_set) != canonical(replay_set):
        fail("live-sink spans differ from JSONL-replay spans")

    # Eviction independence: capped recorder, live sink only.
    capped_trace = TraceRecorder(max_records=CAP)
    capped_builder = SpanBuilder()
    capped_trace.add_sink(capped_builder)
    capped_env, _ = traced_run(capped_trace)
    if capped_trace.dropped == 0:
        fail(f"cap {CAP} evicted nothing; gate is vacuous")
    capped_set = capped_builder.finish(capped_env.sim.now)
    if canonical(capped_set) != canonical(live_set):
        fail(f"spans changed under ring-buffer eviction "
             f"(cap {CAP}, {capped_trace.dropped} dropped)")

    print(
        f"spans identity gate: {len(live_set.spans)} spans, "
        f"{len(live_records)} records, {capped_trace.dropped} evicted in "
        "the capped leg — span layer is passive, replay-stable, and "
        "eviction-independent"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
