#!/usr/bin/env python3
"""CI gate: a fleet of one is indistinguishable from the plain runner.

Three comparisons, any mismatch exits 1:

1. **Results** — ``build_fleet_env(devices=1)`` + ``run_fleet`` must
   produce ``WorkloadResult``s that compare equal, field for field, to
   ``build_env`` + ``run_workloads`` over the same tenant mix and seed
   (same sim event order, same RNG draws, same metrics snapshots, and
   no ``fleet_*`` keys leaking in).
2. **Traces** — with recording on, the two paths must emit identical
   event streams: same kinds, same times, same payloads, no ``device``
   tags on the single-device path.
3. **Rendered bytes** — the canonical JSON encoding of both result sets
   must be byte-identical, which is what "``repro fleet run --devices
   1`` output matches the pre-fleet runner" means mechanically.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import itertools  # noqa: E402

import repro.gpu.channel as channel_module  # noqa: E402
import repro.osmodel.task as task_module  # noqa: E402
from repro.experiments.parallel import result_to_jsonable  # noqa: E402
from repro.experiments.runner import build_env, run_workloads  # noqa: E402
from repro.fleet.registry import build_fleet_env, run_fleet  # noqa: E402
from repro.fleet.tenants import FleetTenant  # noqa: E402
from repro.sim.trace import TraceRecorder  # noqa: E402

DURATION_US = 120_000.0
WARMUP_US = 30_000.0
SEED = 3


def tenant_mix():
    return [
        FleetTenant("p0.t000", request_size_us=800.0),
        FleetTenant("p0.t001", request_size_us=400.0, sleep_ratio=0.25),
        FleetTenant("p1.t002", request_size_us=1200.0, jitter_sigma=0.2),
        FleetTenant("p1.t003", request_size_us=2400.0),
    ]


def reset_global_ids():
    # Channel/task ids draw from process-global counters, so two runs in
    # one process see different offsets; each comparison leg starts from
    # the same state, exactly as two fresh CLI invocations would.
    channel_module._channel_ids = itertools.count(1)
    task_module._task_ids = itertools.count(1)


def run_plain(trace=None):
    reset_global_ids()
    env = build_env("dfq", seed=SEED, trace=trace)
    return run_workloads(env, tenant_mix(), DURATION_US, WARMUP_US)


def run_fleet_of_one(trace=None):
    reset_global_ids()
    env = build_fleet_env(devices=1, scheduler="dfq", seed=SEED, trace=trace)
    return run_fleet(env, tenant_mix(), DURATION_US, WARMUP_US)


def fail(message: str) -> None:
    print(f"fleet identity gate FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    plain = run_plain()
    fleet = run_fleet_of_one()

    if sorted(plain) != sorted(fleet):
        fail(f"tenant sets differ: {sorted(plain)} vs {sorted(fleet)}")
    for name in plain:
        if plain[name] != fleet[name]:
            fail(f"result for {name!r} differs:\n"
                 f"  plain: {plain[name]}\n  fleet: {fleet[name]}")
    for name, result in fleet.items():
        leaked = [key for key in result.metrics if key.startswith("fleet_")]
        if leaked:
            fail(f"fleet_* metrics leaked into single-device run: {leaked}")

    plain_trace, fleet_trace = TraceRecorder(), TraceRecorder()
    run_plain(trace=plain_trace)
    run_fleet_of_one(trace=fleet_trace)
    plain_records = list(plain_trace.records())
    fleet_records = list(fleet_trace.records())
    if len(plain_records) != len(fleet_records):
        fail(f"trace lengths differ: {len(plain_records)} "
             f"vs {len(fleet_records)}")
    for index, (a, b) in enumerate(zip(plain_records, fleet_records)):
        if a != b:
            fail(f"trace record {index} differs:\n  plain: {a}\n  fleet: {b}")
        if "device" in b.payload:
            fail(f"single-device fleet record carries a device tag: {b}")

    encode = lambda results: json.dumps(  # noqa: E731
        {name: result_to_jsonable(results[name]) for name in sorted(results)},
        sort_keys=True,
    ).encode("utf-8")
    if encode(plain) != encode(fleet):
        fail("canonical JSON encodings differ")

    print(
        f"fleet identity gate: {len(fleet)} tenants, "
        f"{len(fleet_records)} trace records — fleet(1) is byte-identical "
        "to the plain runner"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
