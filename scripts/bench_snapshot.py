#!/usr/bin/env python3
"""Emit a committed performance snapshot (``BENCH_PR<n>.json``) at repo root.

The snapshot is a bundle of ``repro perf`` run records, one per tracked
experiment, captured with telemetry riding along::

    PYTHONPATH=src python scripts/bench_snapshot.py
    PYTHONPATH=src python scripts/bench_snapshot.py --duration-ms 60 \\
        --repeats 3 -o BENCH_PR7.json

It exists so the repository carries a perf trajectory: each PR that cares
commits a fresh ``BENCH_PRn.json``, and CI gates new runs against the
latest one (``repro perf gate --baseline BENCH_PR7.json ...``).  Wall
times in the snapshot are min-of-N over ``--repeats`` cold runs, the
standard noise-resistant estimator; the simulation metrics inside are
deterministic per seed, so they double as a figure-drift fingerprint.

The bundle shape (additive-only, like the record schema itself)::

    {
      "bench": "PR7",
      "schema": 1,
      "env": {...environment fingerprint...},
      "records": {"figure4": {...run record...}, "figure6": {...}}
    }
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.perf import record_run  # noqa: E402
from repro.obs.store import RECORD_SCHEMA, environment_fingerprint  # noqa: E402

#: Experiments tracked in the committed snapshot.  figure4 is the cheap
#: canary (solo slowdown grid); figure6 exercises the pairwise farm.
DEFAULT_EXPERIMENTS = ("figure4", "figure6")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record the committed BENCH snapshot bundle.",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_EXPERIMENTS),
        help="comma-separated experiment names "
        f"(default: {','.join(DEFAULT_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--duration-ms", type=float, default=60.0,
        help="simulated duration per run in milliseconds (default: 60)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="cell-farm process-pool size (default: 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="cold runs per experiment; wall_s is the min (default: 2)",
    )
    parser.add_argument(
        "--bench", default="PR7", help="snapshot tag (default: PR7)",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="output path (default: BENCH_<tag>.json at repo root)",
    )
    args = parser.parse_args(argv)

    names = [name.strip() for name in args.experiments.split(",") if name.strip()]
    records = {}
    for name in names:
        print(
            f"bench: recording {name} (duration {args.duration_ms:g} ms, "
            f"workers {args.workers}, min of {args.repeats})...",
            file=sys.stderr,
        )
        record, _output = record_run(
            name,
            duration_ms=args.duration_ms,
            seed=args.seed,
            workers=args.workers,
            repeats=args.repeats,
            no_cache=True,
            note=f"bench_snapshot {args.bench}",
        )
        records[name] = record
        print(
            f"bench: {name} wall {record['wall_s']:.2f}s, "
            f"{len(record['cells'])} cells",
            file=sys.stderr,
        )

    bundle = {
        "bench": args.bench,
        "schema": RECORD_SCHEMA,
        "env": environment_fingerprint(),
        "records": records,
    }
    output = args.output or REPO_ROOT / f"BENCH_{args.bench}.json"
    output.write_text(json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    print(f"bench: wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
