"""Figure 5 — standalone Throttle slowdown across request sizes."""

from repro.experiments import figure5
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure5(benchmark, workers):
    rows = run_once(
        benchmark,
        lambda: figure5.run(
            duration_us=150_000.0, warmup_us=25_000.0, workers=workers
        ),
    )
    print(
        "\n"
        + format_table(
            ["size(us)"] + list(figure5.SCHEDULERS),
            [
                [row.request_size_us]
                + [row.slowdowns[s] for s in figure5.SCHEDULERS]
                for row in rows
            ],
            title="Figure 5: standalone Throttle slowdown",
        )
    )
    engaged = [row.slowdowns["timeslice"] for row in rows]
    assert engaged[0] > 1.15  # expensive at 19us
    assert engaged[-1] < 1.05  # negligible at 1.7ms
    for row in rows:
        assert row.slowdowns["disengaged-timeslice"] < 1.08
        assert row.slowdowns["dfq"] < 1.12
