"""Figure 6 — pairwise fairness (application vs Throttle)."""

from repro.experiments import figure6
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure6(benchmark, workers):
    outcomes = run_once(
        benchmark,
        lambda: figure6.run(
            duration_us=300_000.0,
            warmup_us=60_000.0,
            sizes=(19.0, 303.0, 1700.0),
            workers=workers,
        ),
    )
    print(
        "\n"
        + format_table(
            ["app", "thr size", "scheduler", "app x", "thr x"],
            [
                [
                    o.app,
                    o.throttle_size_us,
                    o.scheduler,
                    o.app_slowdown,
                    o.throttle_slowdown,
                ]
                for o in outcomes
            ],
            title="Figure 6: slowdowns vs standalone direct access",
        )
    )
    # Direct access: unfairness grows with request-size asymmetry.
    direct_dct_large = next(
        o for o in outcomes
        if o.scheduler == "direct" and o.app == "DCT"
        and o.throttle_size_us == 1700.0
    )
    assert direct_dct_large.app_slowdown > 8.0
    # Paper schedulers: compute pairs near the fair 2x.
    for o in outcomes:
        if o.scheduler in ("timeslice", "disengaged-timeslice") and o.app in (
            "DCT",
            "FFT",
        ):
            assert o.app_slowdown < 3.2, (o.app, o.throttle_size_us)
            assert o.throttle_slowdown < 3.2, (o.app, o.throttle_size_us)
        if o.scheduler == "dfq" and o.app in ("DCT", "FFT"):
            assert o.app_slowdown < 3.2
            assert o.throttle_slowdown < 3.4
    # The glxgears anomaly under DFQ at small Throttle sizes.
    gears = next(
        o for o in outcomes
        if o.scheduler == "dfq" and o.app == "glxgears"
        and o.throttle_size_us == 19.0
    )
    assert gears.app_slowdown > gears.throttle_slowdown * 1.3
