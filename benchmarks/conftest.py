"""Benchmark harness conventions.

Each ``bench_*.py`` regenerates one paper table/figure at a reduced (but
structurally complete) scale and prints the paper-style rows.  Run with::

    pytest benchmarks/ --benchmark-only -s

Pass ``--workers N`` to exercise the parallel cell farm from the bench
harness (drivers built on ``run_cells`` fan their cells over a process
pool; results are identical to serial, only the wall time changes)::

    pytest benchmarks/ --benchmark-only -s --workers 4

Every benchmark executes its experiment exactly once (simulations are
deterministic; repetition would only measure the host machine).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=1,
        help="process-pool size for cell-farm experiment benchmarks "
        "(default: 1 = serial)",
    )


@pytest.fixture
def workers(request):
    """Worker count for drivers built on the parallel cell farm."""
    return request.config.getoption("--workers")


def run_once(benchmark, fn):
    """Execute ``fn`` once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
