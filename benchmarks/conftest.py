"""Benchmark harness conventions.

Each ``bench_*.py`` regenerates one paper table/figure at a reduced (but
structurally complete) scale and prints the paper-style rows.  Run with::

    pytest benchmarks/ --benchmark-only -s

Every benchmark executes its experiment exactly once (simulations are
deterministic; repetition would only measure the host machine).
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Execute ``fn`` once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
