"""Figure 7 — concurrency efficiency of the pairwise executions."""

from repro.experiments import figure7
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure7(benchmark, workers):
    outcomes, summaries = run_once(
        benchmark,
        lambda: figure7.run(
            duration_us=300_000.0,
            warmup_us=60_000.0,
            sizes=(19.0, 303.0, 1700.0),
            workers=workers,
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "mean eff", "mean loss", "max loss"],
            [
                [
                    s.scheduler,
                    s.mean_efficiency,
                    f"{100 * s.mean_loss_vs_direct:.0f}%",
                    f"{100 * s.max_loss_vs_direct:.0f}%",
                ]
                for s in summaries
            ],
            title="Figure 7 summary (paper: TS 19%/42%, DTS 10%/35%, DFQ 4%/18%)",
        )
    )
    by_name = {s.scheduler: s for s in summaries}
    # The paper's ordering: DFQ loses the least, engaged TS the most.
    assert (
        by_name["dfq"].mean_loss_vs_direct
        <= by_name["disengaged-timeslice"].mean_loss_vs_direct + 0.02
    )
    assert (
        by_name["disengaged-timeslice"].mean_loss_vs_direct
        <= by_name["timeslice"].mean_loss_vs_direct + 0.02
    )
    assert by_name["dfq"].mean_loss_vs_direct < 0.15
