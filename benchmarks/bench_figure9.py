"""Figure 9 — fairness with a nonsaturating co-runner."""

from repro.experiments import figure9
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure9(benchmark, workers):
    cells = run_once(
        benchmark,
        lambda: figure9.run(
            duration_us=300_000.0,
            warmup_us=60_000.0,
            ratios=(0.0, 0.4, 0.8),
            workers=workers,
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "sleep", "DCT x", "throttle x"],
            [
                [c.scheduler, c.sleep_ratio, c.app_slowdown, c.throttle_slowdown]
                for c in cells
            ],
            title="Figure 9: DCT vs nonsaturating Throttle",
        )
    )
    at80 = {c.scheduler: c for c in cells if c.sleep_ratio == 0.8}
    # DFQ lets DCT benefit from the sleeper's idleness; timeslice idles.
    assert at80["dfq"].app_slowdown < at80["timeslice"].app_slowdown
    assert at80["dfq"].app_slowdown < 1.8
    assert at80["dfq"].throttle_slowdown < 2.5
