"""Figure 2 — CDFs of request inter-arrival and service periods."""

from repro.experiments import figure2
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure2(benchmark):
    series = run_once(
        benchmark,
        lambda: figure2.run(duration_us=150_000.0, warmup_us=20_000.0),
    )
    bins = list(range(0, 14))
    rows = []
    for entry in series:
        rows.append([entry.app, "service"] + [entry.service_bins[b] for b in bins])
        rows.append(
            [entry.app, "inter-arr"] + [entry.interarrival_bins[b] for b in bins]
        )
    print(
        "\n"
        + format_table(
            ["app", "series"] + [f"b{b}" for b in bins],
            rows,
            title="Figure 2: cumulative % per log2(µs) bin",
        )
    )
    # The paper's headline: a large share of requests are short and
    # submitted back-to-back.
    for entry in series:
        assert entry.short_request_fraction >= 0.4, entry.app
        assert entry.interarrival.quantile(0.5) < 2_000.0, entry.app
