"""Ablations — vendor statistics, free-run multiplier, baseline schedulers."""

from repro.experiments import ablations
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_hw_stats_fix_gears_anomaly(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: ablations.run_hw_stats(duration_us=350_000.0, warmup_us=70_000.0),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "gears x", "throttle x", "disparity"],
            [
                [o.scheduler, o.gears_slowdown, o.throttle_slowdown, o.disparity]
                for o in outcomes
            ],
            title="Vendor statistics vs software sampling (glxgears anomaly)",
        )
    )
    sampling = next(o for o in outcomes if o.scheduler == "dfq")
    hardware = next(o for o in outcomes if o.scheduler == "dfq-hw")
    assert sampling.disparity > 1.3  # the anomaly
    assert hardware.disparity < sampling.disparity  # vendor stats help
    assert 0.6 < hardware.disparity < 1.5  # ...and land near even


def test_benchmark_freerun_multiplier(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: ablations.run_freerun_multiplier(
            duration_us=300_000.0, warmup_us=60_000.0
        ),
    )
    print(
        "\n"
        + format_table(
            ["multiplier", "standalone overhead", "DCT x", "thr x"],
            [
                [
                    o.multiplier,
                    f"{100 * o.standalone_overhead:.1f}%",
                    o.app_slowdown,
                    o.throttle_slowdown,
                ]
                for o in outcomes
            ],
            title="Free-run multiplier sweep",
        )
    )
    overheads = {o.multiplier: o.standalone_overhead for o in outcomes}
    # Longer free-runs amortize engagement cost.
    assert overheads[10.0] <= overheads[2.0] + 0.02


def test_benchmark_related_work_baselines(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: ablations.run_baseline_schedulers(
            duration_us=250_000.0, warmup_us=50_000.0
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "DCT x", "thr x", "standalone overhead"],
            [
                [
                    o.scheduler,
                    o.app_slowdown,
                    o.throttle_slowdown,
                    f"{100 * o.app_standalone_overhead:.1f}%",
                ]
                for o in outcomes
            ],
            title="Per-request baselines vs DFQ",
        )
    )
    by_name = {o.scheduler: o for o in outcomes}
    # All baselines bound the unfairness (direct access gives ~6x here),
    # but the non-preemptive per-request disciplines still make the
    # think-time app wait behind whole 500us requests, while DFQ's
    # interval-level control lands both tasks near the fair 2x.
    for name in ("engaged-fq", "drr", "credit", "dfq"):
        assert by_name[name].app_slowdown < 4.2, name
        assert by_name[name].throttle_slowdown < 2.5, name
    assert by_name["dfq"].app_slowdown < 2.5
    assert by_name["credit"].app_slowdown < 2.5
    # ...and DFQ pays the least standalone overhead of the four.
    assert (
        by_name["dfq"].app_standalone_overhead
        < min(
            by_name["engaged-fq"].app_standalone_overhead,
            by_name["drr"].app_standalone_overhead,
            by_name["credit"].app_standalone_overhead,
        )
        + 0.02
    )
