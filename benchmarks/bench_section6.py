"""Section 6.3 — channel-exhaustion DoS and the quota defense."""

from repro.experiments import section6_dos
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_section6(benchmark):
    outcomes = run_once(benchmark, lambda: section6_dos.run(duration_us=50_000.0))
    print(
        "\n"
        + format_table(
            ["quota", "hog ctx", "hog ch", "victim rounds", "locked out"],
            [
                [
                    "on" if o.quota_enabled else "off",
                    o.hog_contexts,
                    o.hog_channels,
                    o.victim_rounds,
                    o.victim_locked_out,
                ]
                for o in outcomes
            ],
            title="Section 6.3 (paper: 48 contexts exhaust the GTX670)",
        )
    )
    unprotected = next(o for o in outcomes if not o.quota_enabled)
    protected = next(o for o in outcomes if o.quota_enabled)
    assert unprotected.hog_contexts == 48
    assert unprotected.victim_locked_out
    assert not protected.victim_locked_out
