"""Figure 4 — standalone slowdown per application per scheduler."""

from repro.experiments import figure4
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once

APPS = [
    "BinarySearch", "BitonicSort", "DCT", "FFT", "FloydWarshall",
    "MatrixMulDouble", "PrefixSum", "glxgears", "oclParticles",
    "simpleTexture3D",
]


def test_benchmark_figure4(benchmark, workers):
    rows = run_once(
        benchmark,
        lambda: figure4.run(
            duration_us=200_000.0, warmup_us=40_000.0, apps=APPS,
            workers=workers,
        ),
    )
    print(
        "\n"
        + format_table(
            ["app", "direct(us)"] + list(figure4.SCHEDULERS),
            [
                [row.app, row.direct_round_us]
                + [row.slowdowns[s] for s in figure4.SCHEDULERS]
                for row in rows
            ],
            title="Figure 4: standalone slowdown vs direct access",
        )
    )
    for row in rows:
        # Paper's shape: DTS <=~2%, DFQ <=~5% (we allow simulator slack);
        # engaged Timeslice is never cheaper than DTS by more than noise.
        assert row.slowdowns["disengaged-timeslice"] < 1.10, row.app
        assert row.slowdowns["dfq"] < 1.15, row.app
        assert (
            row.slowdowns["timeslice"]
            > row.slowdowns["disengaged-timeslice"] - 0.03
        ), row.app
    # Small-request applications suffer the most under engaged Timeslice.
    by_app = {row.app: row for row in rows}
    assert (
        by_app["glxgears"].slowdowns["timeslice"]
        > by_app["MatrixMulDouble"].slowdowns["timeslice"]
    )
