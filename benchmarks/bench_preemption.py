"""Section 6.2 what-if — hardware preemption + runlist masking."""

from repro.experiments import preemption
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_preemption_containment(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: preemption.run_containment(
            duration_us=300_000.0, warmup_us=60_000.0
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "preemption", "killed", "attacker share", "victim x"],
            [
                [
                    o.scheduler,
                    o.preemption,
                    o.attacker_killed,
                    f"{100 * o.attacker_share:.0f}%",
                    o.victim_slowdown,
                ]
                for o in outcomes
            ],
            title="Infinite-loop handling with/without hardware preemption",
        )
    )
    for o in outcomes:
        if o.preemption:
            # Tolerated: contained to a bounded share, victim keeps going.
            assert not o.attacker_killed
            assert o.attacker_share < 0.75
            assert o.victim_slowdown < 3.0
            assert o.preemptions > 0
        else:
            # Killed: the only protection without hardware support.
            assert o.attacker_killed
