"""Protection — infinite-loop kill and greedy-batcher containment."""

from repro.experiments import protection
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_protection_infinite_loop(benchmark):
    outcomes = run_once(
        benchmark, lambda: protection.run_infinite_loop(duration_us=250_000.0)
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "killed", "victim rounds", "starved"],
            [
                [o.scheduler, o.attacker_killed, o.victim_rounds_after_attack,
                 o.victim_starved]
                for o in outcomes
            ],
            title="Infinite-loop request",
        )
    )
    by_name = {o.scheduler: o for o in outcomes}
    assert not by_name["direct"].attacker_killed
    assert by_name["direct"].victim_starved
    for scheduler in ("timeslice", "disengaged-timeslice", "dfq"):
        assert by_name[scheduler].attacker_killed, scheduler
        assert not by_name[scheduler].victim_starved, scheduler


def test_benchmark_protection_greedy_batcher(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: protection.run_greedy_batcher(
            duration_us=250_000.0, warmup_us=50_000.0
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "batcher share", "victim share"],
            [
                [o.scheduler, f"{100 * o.batcher_share:.0f}%",
                 f"{100 * o.victim_share:.0f}%"]
                for o in outcomes
            ],
            title="Greedy batcher vs equal-work victim",
        )
    )
    by_name = {o.scheduler: o for o in outcomes}
    assert by_name["direct"].batcher_share > 0.8
    for scheduler in ("timeslice", "disengaged-timeslice"):
        assert by_name[scheduler].batcher_share < 0.65, scheduler
    # DFQ's fairness is probabilistic: imbalance is only remedied once it
    # exceeds an inter-engagement interval (Section 3.3).
    assert by_name["dfq"].batcher_share < 0.72
