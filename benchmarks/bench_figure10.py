"""Figure 10 — efficiency with a nonsaturating co-runner."""

from repro.experiments import figure10
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure10(benchmark, workers):
    rows = run_once(
        benchmark,
        lambda: figure10.run(
            duration_us=300_000.0,
            warmup_us=60_000.0,
            ratios=(0.0, 0.4, 0.8),
            workers=workers,
        ),
    )
    print(
        "\n"
        + format_table(
            ["scheduler", "sleep", "efficiency", "loss"],
            [
                [
                    row.scheduler,
                    row.sleep_ratio,
                    row.efficiency,
                    f"{100 * row.loss_vs_direct:.0f}%",
                ]
                for row in rows
            ],
            title="Figure 10 (paper @80%: TS -36%, DTS -34%, DFQ ~0%)",
        )
    )
    at80 = {row.scheduler: row for row in rows if row.sleep_ratio == 0.8}
    # The timeslice schedulers waste the sleeper's slices; DFQ does not.
    assert at80["timeslice"].loss_vs_direct > 0.15
    assert at80["disengaged-timeslice"].loss_vs_direct > 0.15
    assert at80["dfq"].loss_vs_direct < 0.12
