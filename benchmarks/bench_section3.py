"""Section 3 — direct-access vs trap-per-request throughput."""

from repro.experiments import section3_throughput
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_section3(benchmark):
    rows = run_once(
        benchmark, lambda: section3_throughput.run(duration_us=80_000.0)
    )
    print(
        "\n"
        + format_table(
            ["request(us)", "direct", "trap", "trap+driver", "gain", "gain(driver)"],
            [
                [
                    row.request_size_us,
                    row.direct_rps,
                    row.syscall_rps,
                    row.driver_rps,
                    f"{100 * row.direct_vs_syscall_gain:.0f}%",
                    f"{100 * row.direct_vs_driver_gain:.0f}%",
                ]
                for row in rows
            ],
            title="Section 3 (paper: +8-35% bare, +48-170% with driver work)",
        )
    )
    small = rows[0]
    assert 0.10 < small.direct_vs_syscall_gain < 0.45
    assert 0.8 < small.direct_vs_driver_gain < 2.2
