"""Figure 8 — four-way fairness and efficiency."""

from repro.experiments import figure8
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_figure8(benchmark, workers):
    rows = run_once(
        benchmark,
        lambda: figure8.run(
            duration_us=400_000.0, warmup_us=80_000.0, workers=workers
        ),
    )
    names = list(rows[0].slowdowns)
    print(
        "\n"
        + format_table(
            ["scheduler"] + names + ["efficiency"],
            [
                [row.scheduler]
                + [row.slowdowns[name] for name in names]
                + [row.efficiency]
                for row in rows
            ],
            title="Figure 8: four-way slowdowns (expected ~4-5x) and efficiency",
        )
    )
    by_name = {row.scheduler: row for row in rows}
    # Direct access crushes somebody; managed schedulers keep everyone
    # within sight of the expected 4-5x.
    assert max(by_name["direct"].slowdowns.values()) > 6.0
    for scheduler in ("timeslice", "disengaged-timeslice", "dfq"):
        assert max(by_name[scheduler].slowdowns.values()) < 8.0, scheduler
    # Disengagement costs less at four-way scale too.
    assert by_name["dfq"].efficiency >= by_name["timeslice"].efficiency - 0.05
