"""Table 1 — benchmark characteristics (round times, request sizes)."""

from repro.experiments import table1
from repro.metrics.tables import format_table

from benchmarks.conftest import run_once


def test_benchmark_table1(benchmark):
    rows = run_once(
        benchmark,
        lambda: table1.run(duration_us=150_000.0, warmup_us=25_000.0),
    )
    assert len(rows) == 18
    table = format_table(
        ["app", "round(paper)", "round(ours)", "req(paper)", "req(ours)"],
        [
            [
                row.app,
                row.paper_round_us,
                row.measured_round_us,
                row.paper_request_us if row.paper_request_us else "-",
                row.measured_request_us,
            ]
            for row in rows
        ],
        title="Table 1 (µs)",
    )
    print("\n" + table)
    # Every application's emergent round time tracks the paper.
    for row in rows:
        assert abs(row.round_error) < 0.25, row.app
