#!/usr/bin/env python3
"""Protection against misbehaving applications (Sections 1, 3.1, 6.3).

Three attacks from the paper, and what each scheduler/policy does:

1. an infinite-loop compute request that would hang the device forever —
   detected via the drain-timeout watchdog and killed;
2. a greedy batcher that inflates request sizes to hog a work-conserving
   device — contained to ~half the machine;
3. a channel hog that opens contexts until the device is exhausted —
   stopped by the channel quota policy.

Plus a fourth the paper could not run: the *device itself* misbehaves.
A fault plan (repro.faults) stalls one task's reference-counter writes;
the drain watchdog tells the faulty observations apart from a genuine
runaway, recovers via backed-off retries, and never kills the innocent
bystander.

Run:  python examples/adversarial_protection.py
"""

from repro import (
    ChannelHog,
    ChannelQuotaPolicy,
    CostParams,
    FaultPlan,
    FaultSpec,
    GreedyBatcher,
    InfiniteKernel,
    Throttle,
    build_env,
    make_app,
    run_workloads,
)
from repro.faults import registry as fault_points
from repro.metrics.tables import format_table


def infinite_loop_attack() -> None:
    costs = CostParams()
    costs.max_request_us = 50_000.0  # the documented per-request limit
    rows = []
    for scheduler in ("direct", "dfq"):
        env = build_env(scheduler, costs=costs, seed=0)
        attacker = InfiniteKernel(normal_size_us=100.0, normal_requests=30)
        victim = make_app("DCT", instance="victim")
        run_workloads(env, [attacker, victim], 300_000.0, 0.0)
        rows.append(
            [
                scheduler,
                attacker.killed,
                attacker.task.kill_reason or "-",
                victim.rounds.stats(warmup_us=150_000.0).count,
            ]
        )
    print(
        format_table(
            ["scheduler", "attacker killed", "reason", "victim rounds after"],
            rows,
            title="1. Infinite-loop request",
        )
    )


def greedy_batcher_attack() -> None:
    rows = []
    for scheduler in ("direct", "dfq"):
        env = build_env(scheduler, seed=0)
        batcher = GreedyBatcher(work_unit_us=50.0, batch_factor=20)
        victim = Throttle(50.0, name="victim")
        run_workloads(env, [batcher, victim], 300_000.0, 50_000.0)
        total = env.device.task_usage(batcher.task) + env.device.task_usage(
            victim.task
        )
        rows.append(
            [scheduler, f"{100 * env.device.task_usage(batcher.task) / total:.0f}%"]
        )
    print(
        format_table(
            ["scheduler", "batcher's device share"],
            rows,
            title="\n2. Greedy batching (equal work per unit time, 20x batches)",
        )
    )


def channel_dos_attack() -> None:
    rows = []
    for quota in (None, ChannelQuotaPolicy(channels_per_task=4)):
        env = build_env("direct", quota=quota, seed=0)
        hog = ChannelHog()
        victim = Throttle(100.0, name="victim")
        hog.start(env.sim, env.kernel, env.rng)
        env.sim.run(until=20_000.0)
        victim.start(env.sim, env.kernel, env.rng)
        env.sim.run(until=40_000.0)
        rows.append(
            [
                "on" if quota else "off",
                hog.contexts_opened,
                hog.channels_opened,
                len(victim.rounds) > 0,
            ]
        )
    print(
        format_table(
            ["quota", "hog contexts", "hog channels", "victim can run"],
            rows,
            title="\n3. Channel-exhaustion DoS (GTX670: 48 contexts = locked)",
        )
    )


def injected_device_fault() -> None:
    # The device stalls "victim"'s completion visibility twice for 40 ms
    # each — longer than the 25 ms drain deadline, so every stall looks
    # like a hung request.  The watchdog attributes, retries, recovers.
    costs = CostParams()
    costs.max_request_us = 25_000.0
    plan = FaultPlan(
        specs=(
            FaultSpec(
                point=fault_points.GPU_REFCOUNTER_STALL,
                start_us=50_000.0,
                magnitude_us=40_000.0,
                count=2,
                target_task="victim",
            ),
        ),
        seed=7,
        name="refstall",
    )
    rows = []
    for fault_plan in (None, plan):
        env = build_env("dfq", costs=costs, seed=0, fault_plan=fault_plan)
        victim = Throttle(800.0, name="victim")
        bystander = Throttle(800.0, name="bystander")
        results = run_workloads(env, [victim, bystander], 300_000.0, 50_000.0)
        metrics = results["victim"].metrics
        rows.append(
            [
                plan.name if fault_plan else "none",
                int(metrics.get("faults_injected", 0)),
                int(metrics.get("fault_detections", 0)),
                int(metrics.get("fault_recoveries", 0)),
                results["victim"].killed,
                results["bystander"].killed,
            ]
        )
    print(
        format_table(
            [
                "fault plan",
                "injected",
                "detected",
                "recovered",
                "victim killed",
                "bystander killed",
            ],
            rows,
            title="\n4. Faulty device (stalled refcounter) vs the drain watchdog",
        )
    )


if __name__ == "__main__":
    infinite_loop_attack()
    greedy_batcher_attack()
    channel_dos_attack()
    injected_device_fault()
