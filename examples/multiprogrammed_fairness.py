#!/usr/bin/env python3
"""Multiprogrammed fairness at four-way scale (the Figure 8 scenario).

One large-request Throttle competes with three small-request OpenCL
applications.  With direct access, the Throttle's 1.7 ms requests dominate
the hardware's per-request round-robin; Disengaged Fair Queueing brings
everyone to the expected ~4-5x slowdown while staying mostly disengaged.

Run:  python examples/multiprogrammed_fairness.py
"""

from repro import Throttle, build_env, make_app, run_workloads, solo_baseline
from repro.metrics.efficiency import concurrency_efficiency
from repro.metrics.fairness import jain_index
from repro.metrics.tables import format_table

DURATION_US = 500_000.0
WARMUP_US = 100_000.0
APPS = ("BinarySearch", "DCT", "FFT")


def build_mix():
    workloads = [make_app(name) for name in APPS]
    workloads.append(Throttle(1700.0, name="throttle"))
    return workloads


def main() -> None:
    baselines = {}
    for workload in build_mix():
        name = workload.name
        factory = (
            (lambda name=name: make_app(name))
            if name in APPS
            else (lambda: Throttle(1700.0, name="throttle"))
        )
        baselines[name] = solo_baseline(factory, DURATION_US, WARMUP_US)

    rows = []
    for scheduler in ("direct", "disengaged-timeslice", "dfq"):
        env = build_env(scheduler, seed=3)
        workloads = build_mix()
        run_workloads(env, workloads, DURATION_US, WARMUP_US)
        slowdowns = {
            w.name: w.round_stats(WARMUP_US).mean_us
            / baselines[w.name].rounds.mean_us
            for w in workloads
        }
        shares = [
            env.device.task_usage(w.task) for w in workloads
        ]
        efficiency = concurrency_efficiency(
            (baselines[w.name].rounds.mean_us, w.round_stats(WARMUP_US).mean_us)
            for w in workloads
        )
        rows.append(
            [scheduler]
            + [slowdowns[name] for name in (*APPS, "throttle")]
            + [jain_index(shares), efficiency]
        )

    print(
        format_table(
            ["scheduler", *APPS, "throttle", "Jain index", "efficiency"],
            rows,
            title="Four-way sharing: slowdowns (fair ~4-5x), usage fairness, efficiency",
        )
    )


if __name__ == "__main__":
    main()
