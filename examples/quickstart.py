#!/usr/bin/env python3
"""Quickstart: two applications sharing a GPU under four schedulers.

Builds a simulated system (GPU device, kernel, interception layer), runs
the DCT benchmark against a large-request Throttle microbenchmark, and
shows how each scheduler divides the device: direct access lets the
batcher win; the paper's schedulers restore the fair ~2x/2x split.

Run:  python examples/quickstart.py
"""

from repro import Throttle, build_env, make_app, run_workloads, solo_baseline
from repro.metrics.tables import format_table

DURATION_US = 300_000.0  # 300 ms of simulated time
WARMUP_US = 60_000.0


def main() -> None:
    # 1. Measure each application alone under direct device access — the
    #    baseline every slowdown is computed against.
    dct_alone = solo_baseline(lambda: make_app("DCT"), DURATION_US, WARMUP_US)
    throttle_alone = solo_baseline(
        lambda: Throttle(1700.0, name="throttle"), DURATION_US, WARMUP_US
    )
    print(
        f"standalone: DCT round = {dct_alone.rounds.mean_us:.0f}us, "
        f"Throttle round = {throttle_alone.rounds.mean_us:.0f}us\n"
    )

    # 2. Run them together under each scheduler.
    rows = []
    for scheduler in ("direct", "timeslice", "disengaged-timeslice", "dfq"):
        env = build_env(scheduler, seed=1)
        dct = make_app("DCT")
        throttle = Throttle(1700.0, name="throttle")
        run_workloads(env, [dct, throttle], DURATION_US, WARMUP_US)
        rows.append(
            [
                scheduler,
                dct.round_stats(WARMUP_US).mean_us / dct_alone.rounds.mean_us,
                throttle.round_stats(WARMUP_US).mean_us
                / throttle_alone.rounds.mean_us,
                env.kernel.fault_count,
                env.kernel.submit_count,
            ]
        )

    print(
        format_table(
            ["scheduler", "DCT slowdown", "throttle slowdown", "faults", "submissions"],
            rows,
            title="DCT vs Throttle(1.7ms): fair sharing is ~2x for both",
        )
    )
    print(
        "\nNote how the disengaged schedulers intercept only a fraction of"
        " submissions\nwhile matching the engaged scheduler's fairness."
    )


if __name__ == "__main__":
    main()
