#!/usr/bin/env python3
"""Work conservation with nonsaturating workloads (Figures 9/10).

A Throttle that sleeps 80% of the time shares the GPU with DCT.  Timeslice
schedulers idle the device through the sleeper's unused slices; Disengaged
Fair Queueing co-schedules during free-run periods, so DCT absorbs the
idle time at no fairness cost.

Run:  python examples/nonsaturating_workloads.py
"""

from repro import Throttle, build_env, make_app, run_workloads, solo_baseline
from repro.metrics.tables import format_table

DURATION_US = 400_000.0
WARMUP_US = 80_000.0
SLEEP_RATIOS = (0.0, 0.4, 0.8)


def main() -> None:
    dct_alone = solo_baseline(lambda: make_app("DCT"), DURATION_US, WARMUP_US)
    rows = []
    for ratio in SLEEP_RATIOS:
        throttle_alone = solo_baseline(
            lambda ratio=ratio: Throttle(66.0, sleep_ratio=ratio, name="thr"),
            DURATION_US,
            WARMUP_US,
        )
        for scheduler in ("timeslice", "dfq"):
            env = build_env(scheduler, seed=2)
            dct = make_app("DCT")
            throttle = Throttle(66.0, sleep_ratio=ratio, name="thr")
            run_workloads(env, [dct, throttle], DURATION_US, WARMUP_US)
            dct_x = dct.round_stats(WARMUP_US).mean_us / dct_alone.rounds.mean_us
            thr_x = (
                throttle.round_stats(WARMUP_US).mean_us
                / throttle_alone.rounds.mean_us
            )
            efficiency = 1.0 / dct_x + 1.0 / thr_x
            rows.append([f"{ratio:.0%}", scheduler, dct_x, thr_x, efficiency])
    print(
        format_table(
            ["sleep ratio", "scheduler", "DCT slowdown", "thr slowdown", "efficiency"],
            rows,
            title="Nonsaturating co-runner: DFQ stays work-conserving "
            "(fair = nobody far beyond 2x)",
        )
    )


if __name__ == "__main__":
    main()
