#!/usr/bin/env python3
"""Seeing a scheduler's interleaving: ASCII timelines and bar charts.

Captures submit/complete traces for DCT vs a large-request Throttle under
three schedulers and renders each interleaving as an ASCII timeline —
direct access shows ragged request-granular alternation dominated by the
big requests, the timeslice scheduler shows clean exclusive slices, and
DFQ shows free-run mixing punctuated by engagement barriers.

Run:  python examples/timeline_visualization.py
"""

from repro import Throttle, build_env, make_app, run_workloads
from repro.analysis.charts import bar_chart
from repro.analysis.timeline import (
    TIMELINE_KINDS,
    build_timeline,
    render_ascii_timeline,
)

DURATION_US = 200_000.0
WINDOW = (120_000.0, 160_000.0)  # the 40 ms slice of time to draw


def main() -> None:
    shares = []
    for scheduler in ("direct", "disengaged-timeslice", "dfq"):
        env = build_env(scheduler, seed=4, trace_kinds=TIMELINE_KINDS)
        dct = make_app("DCT")
        throttle = Throttle(1700.0, name="throttle")
        run_workloads(env, [dct, throttle], DURATION_US, 0.0)
        timeline = build_timeline(env.trace, start_us=WINDOW[0], end_us=WINDOW[1])
        print(f"--- {scheduler} ---")
        print(render_ascii_timeline(timeline, width=76))
        print()
        shares.append((scheduler, timeline.share("DCT")))

    print("DCT's share of device time in the window:")
    print(bar_chart(shares, width=40, unit=" share", max_value=1.0))


if __name__ == "__main__":
    main()
