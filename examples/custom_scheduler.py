#!/usr/bin/env python3
"""Writing your own scheduler against the interception API.

The library's scheduler interface is the event-based surface the paper
argues accelerators should expose (Section 6.1): channel activation,
request faults while engaged, observed submissions, and polled
completions.  This example implements a tiny **priority scheduler**: one
task is designated foreground and always passes; background tasks are
blocked whenever the foreground task has been active recently.

It is deliberately unfair — the point is to show how little code a policy
needs on top of the NEON-style substrate.

Run:  python examples/custom_scheduler.py
"""

from typing import Optional

from repro import SchedulerBase, Throttle, build_env, run_workloads
from repro.core.base import register_scheduler
from repro.metrics.tables import format_table


@register_scheduler
class ForegroundFirst(SchedulerBase):
    """Strict foreground priority with a recency window."""

    name = "foreground-first"

    #: How long after a foreground submission the background stays blocked.
    recency_window_us = 200.0

    def setup(self) -> None:
        self.foreground_name: Optional[str] = None
        self._last_foreground_submit = -1e18
        self._blocked: list = []

    # -- engagement policy: intercept everyone ------------------------
    def on_channel_tracked(self, channel) -> None:
        channel.register_page.protect()

    # -- the policy ----------------------------------------------------
    def on_fault(self, task, channel, request):
        if task.name == self.foreground_name:
            self._last_foreground_submit = self.sim.now
            self._release_later()
            return None
        if self.sim.now - self._last_foreground_submit > self.recency_window_us:
            return None  # foreground is quiet: background may run
        event = self.sim.event()
        self._blocked.append(event)
        return event

    def _release_later(self) -> None:
        def release():
            if self.sim.now - self._last_foreground_submit >= self.recency_window_us:
                blocked, self._blocked = self._blocked, []
                for event in blocked:
                    if not event.triggered:
                        event.trigger()
            else:
                self.sim.schedule(self.recency_window_us, release)

        self.sim.schedule(self.recency_window_us, release)


def main() -> None:
    env = build_env("foreground-first", seed=0)
    env.scheduler.foreground_name = "interactive"
    interactive = Throttle(50.0, sleep_ratio=0.9, name="interactive")
    batch = Throttle(500.0, name="batch")
    run_workloads(env, [interactive, batch], 300_000.0, 50_000.0)
    rows = [
        [
            workload.name,
            workload.round_stats(50_000.0).mean_us,
            env.device.task_usage(workload.task),
        ]
        for workload in (interactive, batch)
    ]
    print(
        format_table(
            ["task", "round (us)", "device usage (us)"],
            rows,
            title="Custom foreground-first policy "
            "(interactive stays near its native 50us rounds)",
        )
    )
    stats = interactive.round_stats(50_000.0)
    # Non-preemptive: the foreground can still land behind one in-flight
    # 500us batch request, but never behind a queue of them.
    assert stats.mean_us < 350.0, "foreground latency should stay bounded"


if __name__ == "__main__":
    main()
