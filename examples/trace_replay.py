#!/usr/bin/env python3
"""Open-loop trace replay and weighted fair sharing.

Two library features beyond the paper's evaluation:

1. **Trace replay** — a latency-sensitive service is modeled as an
   open-loop Poisson request stream (submissions happen on schedule no
   matter how slow the device is, so queueing shows up as latency); a
   batch job shares the GPU with it.
2. **Weighted DFQ** — the same scenario with the service given weight 3,
   entitling it to 3/4 of the device whenever it wants it.

Run:  python examples/trace_replay.py
"""

import numpy as np

from repro import Throttle, build_env, run_workloads
from repro.core.disengaged_fq import DisengagedFairQueueing
from repro.metrics.tables import format_table
from repro.workloads.traces import TraceWorkload, synthesize_poisson_trace

DURATION_US = 400_000.0
WARMUP_US = 80_000.0


def make_service() -> TraceWorkload:
    rng = np.random.default_rng(7)
    entries = synthesize_poisson_trace(
        rng,
        rate_per_ms=1.5,       # ~1.5 requests per millisecond
        mean_size_us=80.0,
        duration_us=DURATION_US,
    )
    return TraceWorkload(entries, name="service", open_loop=True)


def run_case(scheduler) -> list:
    env = build_env(scheduler, seed=7)
    service = make_service()
    batch = Throttle(1500.0, name="batch")
    run_workloads(env, [service, batch], DURATION_US, WARMUP_US)
    stats = service.rounds.stats(WARMUP_US)
    return [
        stats.mean_us,           # mean request latency, queueing included
        stats.p95_us,
        batch.round_stats(WARMUP_US).mean_us,
        env.device.task_usage(service.task)
        / (env.device.task_usage(service.task) + env.device.task_usage(batch.task)),
    ]


def main() -> None:
    rows = []
    for label, scheduler in [
        ("direct", "direct"),
        ("dfq (equal)", "dfq"),
        ("dfq (service weight 3)", DisengagedFairQueueing(weights={"service": 3.0})),
    ]:
        latency, p95, batch_round, share = run_case(scheduler)
        rows.append([label, latency, p95, batch_round, f"{100 * share:.0f}%"])
    print(
        format_table(
            [
                "scheduler",
                "service latency (us)",
                "service p95 (us)",
                "batch round (us)",
                "service share",
            ],
            rows,
            title="Poisson service (open loop) vs 1.5ms batch job",
        )
    )
    print(
        "\nDirect access leaves the service at the mercy of the batch job's"
        "\n1.5ms requests; DFQ bounds the damage, and weighting the service"
        "\nbuys it priority without starving the batch."
    )


if __name__ == "__main__":
    main()
